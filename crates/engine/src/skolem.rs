//! Deterministic null invention.
//!
//! Definition 3.1 of the paper maps each existentially quantified head
//! variable `x` of a trigger `(σ, h)` to a fresh null `c^{σ,h}_x`
//! "whose name is uniquely determined by the trigger and `x` itself".
//! [`SkolemTable`] realises exactly that: it memoises
//! `(σ, h, x) → NullId`, so re-presenting the same trigger yields the
//! same atom — which is what makes the (real) oblivious chase a
//! well-defined fixpoint.
//!
//! The semi-oblivious variant keys nulls by `(σ, h|fr(σ), x)` instead,
//! identifying triggers that agree on the frontier.

use chase_core::ids::{fx_map, FxHashMap, NullId, VarId};
use chase_core::subst::Binding;
use chase_core::term::{NullFactory, Term};
use chase_core::tgd::{Tgd, TgdId};

/// Which part of the body homomorphism identifies a null.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SkolemPolicy {
    /// `c^{σ,h}_x` — the paper's oblivious-chase naming (Def 3.1).
    #[default]
    PerTrigger,
    /// `c^{σ,h|fr}_x` — semi-oblivious naming: triggers agreeing on
    /// the frontier reuse nulls.
    PerFrontier,
}

/// Memoising allocator of labelled nulls.
#[derive(Debug, Clone)]
pub struct SkolemTable {
    policy: SkolemPolicy,
    map: FxHashMap<(TgdId, Vec<Term>, VarId), NullId>,
    factory: NullFactory,
}

impl SkolemTable {
    /// Creates a table with the given policy, starting nulls at `ν0`.
    pub fn new(policy: SkolemPolicy) -> Self {
        SkolemTable {
            policy,
            map: fx_map(),
            factory: NullFactory::new(),
        }
    }

    /// Creates a table whose nulls will not collide with nulls already
    /// appearing in `existing` terms.
    pub fn above(policy: SkolemPolicy, existing: impl IntoIterator<Item = Term>) -> Self {
        SkolemTable {
            policy,
            map: fx_map(),
            factory: NullFactory::above(existing),
        }
    }

    /// The key terms identifying the trigger under the current policy:
    /// images of all body variables (per-trigger) or frontier
    /// variables only (per-frontier), in sorted-variable order.
    fn key_terms(&self, tgd: &Tgd, binding: &Binding) -> Vec<Term> {
        let vars: &[VarId] = match self.policy {
            SkolemPolicy::PerTrigger => tgd.sorted_body_vars(),
            SkolemPolicy::PerFrontier => tgd.frontier(),
        };
        vars.iter()
            .map(|&v| binding.get(v).unwrap_or(Term::Var(v)))
            .collect()
    }

    /// The null witnessing existential variable `x` for trigger
    /// `(tgd_id, binding)`.
    pub fn null_for(&mut self, tgd_id: TgdId, tgd: &Tgd, binding: &Binding, x: VarId) -> NullId {
        let key = (tgd_id, self.key_terms(tgd, binding), x);
        if let Some(&n) = self.map.get(&key) {
            return n;
        }
        let n = self.factory.fresh();
        self.map.insert(key, n);
        n
    }

    /// Total nulls invented so far.
    pub fn invented(&self) -> u32 {
        self.factory.allocated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::prelude::*;

    /// `R(x,y) -> exists z. S(y,z)`.
    fn rule(vocab: &mut Vocabulary) -> (TgdSet, VarId, VarId, VarId) {
        let mut b = RuleBuilder::new(vocab);
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.body("R", &[x, y]).unwrap();
        b.head("S", &[y, z]).unwrap();
        let tgd = b.build().unwrap();
        let set = TgdSet::new(vec![tgd], vocab).unwrap();
        (
            set,
            x.as_var().unwrap(),
            y.as_var().unwrap(),
            z.as_var().unwrap(),
        )
    }

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    #[test]
    fn per_trigger_distinguishes_non_frontier_bindings() {
        let mut vocab = Vocabulary::new();
        let (set, x, y, z) = rule(&mut vocab);
        let tgd = set.tgd(TgdId(0));
        let mut table = SkolemTable::new(SkolemPolicy::PerTrigger);
        let h1 = Binding::from_pairs([(x, c(0)), (y, c(1))]);
        let h2 = Binding::from_pairs([(x, c(9)), (y, c(1))]); // same frontier y
        let n1 = table.null_for(TgdId(0), tgd, &h1, z);
        let n2 = table.null_for(TgdId(0), tgd, &h2, z);
        assert_ne!(n1, n2);
        // Memoisation: same trigger, same null.
        assert_eq!(table.null_for(TgdId(0), tgd, &h1, z), n1);
    }

    #[test]
    fn per_frontier_identifies_frontier_equal_triggers() {
        let mut vocab = Vocabulary::new();
        let (set, x, y, z) = rule(&mut vocab);
        let tgd = set.tgd(TgdId(0));
        let mut table = SkolemTable::new(SkolemPolicy::PerFrontier);
        let h1 = Binding::from_pairs([(x, c(0)), (y, c(1))]);
        let h2 = Binding::from_pairs([(x, c(9)), (y, c(1))]);
        let n1 = table.null_for(TgdId(0), tgd, &h1, z);
        let n2 = table.null_for(TgdId(0), tgd, &h2, z);
        assert_eq!(n1, n2);
    }

    #[test]
    fn starts_above_existing_nulls() {
        let mut vocab = Vocabulary::new();
        let (set, x, y, z) = rule(&mut vocab);
        let tgd = set.tgd(TgdId(0));
        let mut table = SkolemTable::above(SkolemPolicy::PerTrigger, [Term::Null(NullId(4))]);
        let h = Binding::from_pairs([(x, c(0)), (y, c(1))]);
        assert_eq!(table.null_for(TgdId(0), tgd, &h, z), NullId(5));
    }
}
