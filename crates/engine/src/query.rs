//! Conjunctive queries over chase results: certain answers and query
//! containment under TGDs — the applications (query answering and
//! containment under constraints) that the paper's introduction cites
//! as the reason for the chase's ubiquity.
//!
//! Both procedures are *sound and complete when the chase terminates*:
//! the chase result is a universal model, so evaluating the CQ over it
//! and keeping the all-constant answers yields exactly the certain
//! answers, and containment reduces to evaluating the candidate
//! container over the chased canonical database of the containee.

use std::ops::ControlFlow;

use chase_core::atom::Atom;
use chase_core::hom::for_each_homomorphism;
use chase_core::ids::VarId;
use chase_core::instance::Instance;
use chase_core::subst::Binding;
use chase_core::term::Term;
use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;

use crate::restricted::{Budget, Outcome, RestrictedChase, Strategy};

/// A conjunctive query `q(x̄) :- body`, with `x̄` the answer variables.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    /// Body atoms (may contain variables only; CQs here are
    /// constant-free like TGDs — constants can be simulated with
    /// fresh unary predicates if needed).
    pub body: Vec<Atom>,
    /// The answer tuple, a list of body variables.
    pub answer_vars: Vec<VarId>,
}

/// Errors from chase-based query answering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The chase did not terminate within the budget; certain answers
    /// cannot be read off a partial chase (it under-approximates).
    ChaseBudgetExhausted,
    /// An answer variable does not occur in the query body.
    UnsafeAnswerVariable(VarId),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::ChaseBudgetExhausted => {
                write!(
                    f,
                    "restricted chase exhausted its budget; cannot certify answers"
                )
            }
            QueryError::UnsafeAnswerVariable(v) => {
                write!(f, "answer variable {v:?} does not occur in the query body")
            }
        }
    }
}

impl std::error::Error for QueryError {}

impl ConjunctiveQuery {
    /// Builds a query, checking answer-variable safety.
    pub fn new(body: Vec<Atom>, answer_vars: Vec<VarId>) -> Result<Self, QueryError> {
        for &v in &answer_vars {
            let occurs = body.iter().any(|a| a.vars().any(|w| w == v));
            if !occurs {
                return Err(QueryError::UnsafeAnswerVariable(v));
            }
        }
        Ok(ConjunctiveQuery { body, answer_vars })
    }

    /// Re-checks answer-variable safety. [`ConjunctiveQuery::new`]
    /// establishes it, but `body` and `answer_vars` are public fields,
    /// so a hand-built or mutated query can violate it; the evaluation
    /// entry points re-validate instead of panicking mid-enumeration.
    fn check_safe(&self) -> Result<(), QueryError> {
        for &v in &self.answer_vars {
            if !self.body.iter().any(|a| a.vars().any(|w| w == v)) {
                return Err(QueryError::UnsafeAnswerVariable(v));
            }
        }
        Ok(())
    }

    /// All answers of the query over an instance (including answers
    /// containing nulls), deduplicated, in discovery order.
    ///
    /// Fails with [`QueryError::UnsafeAnswerVariable`] if the query
    /// was built by hand with an answer variable missing from the body.
    pub fn answers(&self, instance: &Instance) -> Result<Vec<Vec<Term>>, QueryError> {
        self.check_safe()?;
        let mut out: Vec<Vec<Term>> = Vec::new();
        let mut binding = Binding::new();
        let _ = for_each_homomorphism(&self.body, instance, &mut binding, &mut |h| {
            let tuple: Vec<Term> = self
                .answer_vars
                .iter()
                // invariant: `check_safe` guaranteed every answer
                // variable occurs in the body, and a homomorphism of
                // the body binds every body variable.
                .filter_map(|&v| h.get(v))
                .collect();
            if tuple.len() == self.answer_vars.len() && !out.contains(&tuple) {
                out.push(tuple);
            }
            ControlFlow::Continue(())
        });
        Ok(out)
    }

    /// The *certain answers* of the query over `database` under `tgds`:
    /// chase to a universal model, evaluate, keep all-constant tuples.
    ///
    /// Requires the chase to terminate within `budget` (use the
    /// termination deciders up front to know it will, for every
    /// database).
    pub fn certain_answers(
        &self,
        database: &Instance,
        tgds: &TgdSet,
        budget: Budget,
    ) -> Result<Vec<Vec<Term>>, QueryError> {
        let run = RestrictedChase::new(tgds)
            .strategy(Strategy::Fifo)
            .record_derivation(false)
            .run(database, budget);
        if run.outcome != Outcome::Terminated {
            return Err(QueryError::ChaseBudgetExhausted);
        }
        Ok(self
            .answers(&run.instance)?
            .into_iter()
            .filter(|tuple| tuple.iter().all(|t| t.is_const()))
            .collect())
    }

    /// The canonical (frozen) database of the query body: every
    /// variable becomes a fresh constant. Returns the database and the
    /// frozen images of the answer variables.
    ///
    /// Fails with [`QueryError::UnsafeAnswerVariable`] if the query
    /// was built by hand with an answer variable missing from the body.
    pub fn freeze(&self, vocab: &mut Vocabulary) -> Result<(Instance, Vec<Term>), QueryError> {
        self.check_safe()?;
        let mut frozen: Vec<(VarId, Term)> = Vec::new();
        let lookup = |v: VarId, vocab: &mut Vocabulary, frozen: &mut Vec<(VarId, Term)>| {
            if let Some(&(_, t)) = frozen.iter().find(|(w, _)| *w == v) {
                return t;
            }
            let t = Term::Const(vocab.constant(&format!("⋆frz{}", v.0)));
            frozen.push((v, t));
            t
        };
        let atoms: Vec<Atom> = self
            .body
            .iter()
            .map(|a| {
                Atom::new(
                    a.pred,
                    a.args
                        .iter()
                        .map(|t| match t {
                            Term::Var(v) => lookup(*v, vocab, &mut frozen),
                            ground => *ground,
                        })
                        .collect::<chase_core::atom::ArgVec>(),
                )
            })
            .collect();
        let tuple = self
            .answer_vars
            .iter()
            // invariant: `check_safe` guaranteed every answer variable
            // occurs in the body, so freezing the body froze it.
            .filter_map(|&v| frozen.iter().find(|(w, _)| *w == v).map(|&(_, t)| t))
            .collect();
        Ok((Instance::from_atoms(atoms), tuple))
    }
}

/// Whether `q1 ⊑ q2` under `tgds` (every certain answer of `q1` is one
/// of `q2`, over all databases): chase the frozen body of `q1` and
/// check that `q2` retrieves the frozen answer tuple — the classic
/// chase-based containment test, sound and complete when the chase
/// terminates.
pub fn contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    tgds: &TgdSet,
    vocab: &mut Vocabulary,
    budget: Budget,
) -> Result<bool, QueryError> {
    let (canonical, tuple) = q1.freeze(vocab)?;
    let run = RestrictedChase::new(tgds)
        .strategy(Strategy::Fifo)
        .record_derivation(false)
        .run(&canonical, budget);
    if run.outcome != Outcome::Terminated {
        return Err(QueryError::ChaseBudgetExhausted);
    }
    Ok(q2.answers(&run.instance)?.into_iter().any(|t| t == tuple))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_program;
    use chase_core::tgd::RuleBuilder;

    /// Builds a CQ from a rule-shaped source string: the head lists
    /// the answer variables, e.g. `R(x,y), S(y) -> Ans(x).`.
    fn cq(src: &str, vocab: &mut Vocabulary) -> ConjunctiveQuery {
        let p = chase_core::parser::parse_program(src, vocab).unwrap();
        let rule = &p.rules[0];
        ConjunctiveQuery::new(rule.body().to_vec(), rule.head()[0].vars().collect()).unwrap()
    }

    #[test]
    fn certain_answers_on_terminating_mapping() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "Emp(ann,cs). Emp(bob,math).
             Emp(e,d) -> exists m. Mgr(d,m).
             Emp(e,d), Mgr(d,m) -> Reports(e,m).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        // q(e) :- Reports(e, m): who certainly reports to someone?
        let q = cq("Reports(e,m) -> Ans(e).", &mut vocab);
        let answers = q
            .certain_answers(&p.database, &set, Budget::steps(1_000))
            .unwrap();
        assert_eq!(answers.len(), 2);
        // q2(m) :- Reports(e, m): the managers are nulls — not certain.
        let q2 = cq("Reports(e,m) -> Ans(m).", &mut vocab);
        let answers2 = q2
            .certain_answers(&p.database, &set, Budget::steps(1_000))
            .unwrap();
        assert!(answers2.is_empty());
    }

    #[test]
    fn budget_exhaustion_is_an_error_not_an_answer() {
        let mut vocab = Vocabulary::new();
        let p = parse_program("R(a,b). R(x,y) -> exists z. R(y,z).", &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let q = cq("R(x,y) -> Ans(x).", &mut vocab);
        assert_eq!(
            q.certain_answers(&p.database, &set, Budget::steps(10)),
            Err(QueryError::ChaseBudgetExhausted)
        );
    }

    #[test]
    fn unsafe_answer_variable_rejected() {
        let mut vocab = Vocabulary::new();
        let mut b = RuleBuilder::new(&mut vocab);
        let (x, y) = (b.var("x"), b.var("y"));
        b.body("R", &[x, y]).unwrap();
        b.head("Ans", &[x]).unwrap();
        let rule = b.build().unwrap();
        let stray = vocab.fresh_var("stray");
        assert!(matches!(
            ConjunctiveQuery::new(rule.body().to_vec(), vec![stray]),
            Err(QueryError::UnsafeAnswerVariable(_))
        ));
    }

    #[test]
    fn hand_built_unsafe_query_errors_instead_of_panicking() {
        // `body`/`answer_vars` are public, so the safety invariant of
        // `new` can be bypassed; evaluation must fail cleanly.
        let mut vocab = Vocabulary::new();
        let p = parse_program("R(a,b).", &mut vocab).unwrap();
        let mut b = RuleBuilder::new(&mut vocab);
        let (x, y) = (b.var("x"), b.var("y"));
        b.body("R", &[x, y]).unwrap();
        b.head("Ans", &[x]).unwrap();
        let rule = b.build().unwrap();
        let stray = vocab.fresh_var("stray");
        let q = ConjunctiveQuery {
            body: rule.body().to_vec(),
            answer_vars: vec![stray],
        };
        assert_eq!(
            q.answers(&p.database),
            Err(QueryError::UnsafeAnswerVariable(stray))
        );
        assert_eq!(
            q.freeze(&mut vocab).unwrap_err(),
            QueryError::UnsafeAnswerVariable(stray)
        );
    }

    #[test]
    fn containment_under_tgds() {
        // Under  Sub(x,y) ∧ Ta(y) → Ta(x)  (taught-by propagates down
        // a subclass edge), q1(x) :- Sub(x,y), Ta(y) is contained in
        // q2(x) :- Ta(x), but not vice versa.
        let mut vocab = Vocabulary::new();
        let set = chase_core::parser::parse_tgds("Sub(x,y), Ta(y) -> Ta(x).", &mut vocab).unwrap();
        let q1 = cq("Sub(x1,y1), Ta(y1) -> Ans(x1).", &mut vocab);
        let q2 = cq("Ta(x2) -> Ans(x2).", &mut vocab);
        assert!(contained_in(&q1, &q2, &set, &mut vocab, Budget::steps(1_000)).unwrap());
        assert!(!contained_in(&q2, &q1, &set, &mut vocab, Budget::steps(1_000)).unwrap());
    }

    #[test]
    fn containment_without_tgds_is_plain_cq_containment() {
        let mut vocab = Vocabulary::new();
        let set = chase_core::parser::parse_tgds("Dummy(q) -> Dummy2(q).", &mut vocab).unwrap();
        // q1(x) :- R(x,y), R(y,x)  ⊑  q2(x) :- R(x,z) ... wait, q2
        // needs R edges from x: holds. The converse fails.
        let q1 = cq("R(x1,y1), R(y1,x1) -> Ans(x1).", &mut vocab);
        let q2 = cq("R(x2,z2) -> Ans(x2).", &mut vocab);
        assert!(contained_in(&q1, &q2, &set, &mut vocab, Budget::steps(100)).unwrap());
        assert!(!contained_in(&q2, &q1, &set, &mut vocab, Budget::steps(100)).unwrap());
    }
}
