//! Batched, optionally parallel trigger discovery.
//!
//! The chase engines discover candidate triggers in batches: the seed
//! batch (all triggers on the database) and, after each application,
//! the delta batch (triggers whose body uses a newly inserted atom).
//! This module evaluates a batch either sequentially or fanned out
//! over the engine's persistent [`DiscoveryPool`] workers, which
//! *steal* work at `(slot, TGD)` cell granularity: an atomic cursor
//! hands out chunks of the slot-major cell grid, so an uneven cell
//! (one TGD with a quadratic join against one hot slot) no longer
//! serialises the batch the way the old static per-TGD partition did.
//!
//! ## Determinism invariants
//!
//! Parallel discovery is **bit-identical** to sequential discovery:
//!
//! 1. Workers only *read* the instance; all mutation (seen-set
//!    insertion, queue pushes, telemetry) happens on the driving
//!    thread after the merge.
//! 2. Every `(slot, TGD)` cell is enumerated wholly by one worker, in
//!    the matcher's canonical order, so a stable sort of the combined
//!    output by `(slot position, TGD id)` reproduces the exact
//!    sequential discovery order regardless of scheduling, stealing
//!    order or worker count.
//! 3. Workers may *pre-screen* activeness. The result is attached as
//!    [`Discovered::inactive_hint`], never used to drop a trigger:
//!    queue length and contents stay identical to the sequential run,
//!    which keeps even the `Random` strategy reproducible. The hint is
//!    sound to consume at pop time because inactivity is monotone —
//!    instances only grow, so a trigger inactive at discovery time is
//!    still inactive later. Unhinted triggers are re-checked
//!    sequentially at apply time as usual.
//!
//! These invariants make the *default* telemetry stream of a parallel
//! run identical to the sequential one. The opt-in profiling stream is
//! deterministic in shape only: per-worker `worker` spans appear in
//! worker-index order with run-varying timings.
//!
//! Worker threads and their scratches live in the engine-owned
//! [`DiscoveryPool`] for the whole run (see [`crate::pool`]); a batch
//! costs a condvar wake instead of the thread spawns + scratch
//! allocations PR 2 paid, which is what fixed the negative scaling
//! this crate used to show on small-batch workloads.

use chase_core::cancel::CancelToken;
use chase_core::hom::HomScratch;
use chase_core::ids::VarId;
use chase_core::instance::Instance;
use chase_core::tgd::{Tgd, TgdId, TgdSet};

use crate::pool::DiscoveryPool;
use crate::trigger::{
    for_each_trigger_of_tgd_using_with, for_each_trigger_of_tgd_with, head_satisfied_with, Trigger,
    TriggerFp,
};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Whether a chase engine may fan trigger discovery (and, for the
/// restricted engine, restriction checking) out over threads.
///
/// `On` is observationally identical to `Off` — same final instance,
/// same step count, same telemetry stream — by the invariants
/// documented in [`crate::driver`]. It only changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded discovery (allocation-free steady state).
    #[default]
    Off,
    /// Discovery batches above the engine's `parallel_threshold` are
    /// evaluated by the persistent worker pool, work-stealing over
    /// `(slot, TGD)` cells.
    On,
}

/// Which variable layout identifies a trigger fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpVars {
    /// All body variables in sorted order (restricted & oblivious).
    SortedBody,
    /// Frontier variables only (semi-oblivious identification).
    Frontier,
}

impl FpVars {
    /// The identifying variable slice of `tgd` under this layout.
    #[inline]
    pub fn of(self, tgd: &Tgd) -> &[VarId] {
        match self {
            FpVars::SortedBody => tgd.sorted_body_vars(),
            FpVars::Frontier => tgd.frontier(),
        }
    }
}

/// One discovered candidate trigger, in canonical discovery order
/// after the merge.
#[derive(Debug, Clone)]
pub struct Discovered {
    /// The trigger itself (owned binding).
    pub trigger: Trigger,
    /// Its interned fingerprint under the batch's [`FpVars`] layout.
    pub fp: TriggerFp,
    /// `true` if a worker already proved the trigger inactive on the
    /// instance it was discovered against. Sound to reuse later
    /// (inactivity is monotone); `false` means "unknown, re-check".
    pub inactive_hint: bool,
    /// Satisfaction watermark: when the prescreen *refuted* head
    /// satisfaction (`inactive_hint == false` with activeness checking
    /// on), this records the instance length the refutation covered.
    /// A later recheck only needs to scan atoms inserted at slot ≥
    /// this watermark — instance growth is monotone, so the refuted
    /// prefix stays refuted. `0` means "nothing refuted yet" (full
    /// check required), which is also what batches without activeness
    /// checking report.
    pub watermark: usize,
}

/// Minimum number of batch rows (delta slots, or seed atoms) before
/// parallel discovery can amortise its dispatch overhead.
pub const MIN_PARALLEL_ROWS: usize = 2;

/// Cap on the per-row fan-out factor charged to join bodies in
/// [`estimated_batch_work`]: beyond this the index-driven matcher's
/// real cost stops growing with the batch.
const JOIN_ROW_CAP: usize = 256;

/// Estimated matcher work of a discovery batch of `rows` rows (delta
/// slots, or database atoms for the seed batch) against `set`.
///
/// Single-atom ("narrow") bodies cost about one index probe per row;
/// join bodies fan each row out against candidates drawn from the rest
/// of the batch, costing roughly `rows` probes per row (capped). The
/// engines' `go_parallel` gating compares this against their
/// `parallel_threshold`, so large-but-narrow batches (hundreds of rows
/// against width-1 bodies, where a sequential pass is a few
/// microseconds) stay sequential while genuinely quadratic batches fan
/// out.
pub fn estimated_batch_work(set: &TgdSet, rows: usize) -> usize {
    let narrow = set.len() - set.join_bodies();
    rows.saturating_mul(narrow).saturating_add(
        rows.saturating_mul(rows.min(JOIN_ROW_CAP))
            .saturating_mul(set.join_bodies()),
    )
}

/// Sort key slot for the merge: position of the delta slot in the
/// batch (0 for seed batches) and the TGD id.
struct Keyed {
    slot_ord: u32,
    tgd: u32,
    item: Discovered,
}

/// Enumerates one `(slot_ord, tgd)` cell into `out`. `slot` of `None`
/// means full (seed) enumeration of the TGD.
#[allow(clippy::too_many_arguments)]
fn collect_cell(
    scratch: &mut HomScratch,
    probe: &mut HomScratch,
    id: TgdId,
    tgd: &Tgd,
    instance: &Instance,
    slot_ord: u32,
    slot: Option<usize>,
    vars: FpVars,
    check_active: bool,
    out: &mut Vec<Keyed>,
) {
    // A refuting prescreen covers the whole instance as it stands now.
    let covered = instance.len();
    let mut visit = |id: TgdId, b: &chase_core::subst::Binding| {
        let fp = TriggerFp::of(id, b, vars.of(tgd));
        // Pre-screen: seed the head matcher with the full body
        // binding (sound — see `Trigger::is_active`). Shares
        // `head_satisfied_with` with the sequential pop-time check so
        // hints and rechecks always agree bit-for-bit.
        let inactive_hint = check_active && head_satisfied_with(probe, tgd, instance, b, 0);
        let watermark = if check_active { covered } else { 0 };
        out.push(Keyed {
            slot_ord,
            tgd: id.0,
            item: Discovered {
                trigger: Trigger {
                    tgd: id,
                    binding: b.clone(),
                },
                fp,
                inactive_hint,
                watermark,
            },
        });
        ControlFlow::Continue(())
    };
    let _ = match slot {
        Some(s) => for_each_trigger_of_tgd_using_with(scratch, id, tgd, instance, s, &mut visit),
        None => for_each_trigger_of_tgd_with(scratch, id, tgd, instance, &mut visit),
    };
}

/// The batch's cell grid: slot-major, TGD-minor, so cell index `i`
/// maps to `(slot_ord, tgd) = (i / ntgds, i % ntgds)`. Seed batches
/// are a single row of `ntgds` cells.
#[derive(Clone, Copy)]
struct CellGrid<'a> {
    slots: Option<&'a [usize]>,
    ntgds: usize,
    ncells: usize,
}

impl<'a> CellGrid<'a> {
    fn new(set: &TgdSet, slots: Option<&'a [usize]>) -> Self {
        let ntgds = set.len();
        let ncells = slots.map_or(1, <[usize]>::len).saturating_mul(ntgds);
        CellGrid {
            slots,
            ntgds,
            ncells,
        }
    }

    /// Enumerates cells `range` (cell indices) in order into `out`,
    /// polling `cancel` between cells.
    #[allow(clippy::too_many_arguments)]
    fn collect_range(
        &self,
        scratch: &mut HomScratch,
        probe: &mut HomScratch,
        set: &TgdSet,
        instance: &Instance,
        vars: FpVars,
        check_active: bool,
        cancel: Option<&CancelToken>,
        range: std::ops::Range<usize>,
        out: &mut Vec<Keyed>,
    ) -> ControlFlow<()> {
        for cell in range {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                return ControlFlow::Break(());
            }
            let slot_ord = cell / self.ntgds;
            let id = TgdId((cell % self.ntgds) as u32);
            collect_cell(
                scratch,
                probe,
                id,
                set.tgd(id),
                instance,
                slot_ord as u32,
                self.slots.map(|s| s[slot_ord]),
                vars,
                check_active,
                out,
            );
        }
        ControlFlow::Continue(())
    }
}

/// Out-of-band controls for one discovery batch: a cancellation token
/// polled by workers between cells, and (for fault-injection tests) a
/// worker index instructed to panic.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchControl<'a> {
    /// Polled by every worker between cells; a cancelled batch returns
    /// early with partial output, which the governed engine then
    /// discards by stopping at its next poll point.
    pub cancel: Option<&'a CancelToken>,
    /// Fault injection: the worker with this index (if drafted) panics
    /// instead of enumerating. `None` in production.
    pub inject_panic_worker: Option<u32>,
    /// Caps the worker count for this batch below the pool's size
    /// (`None` = use the whole pool). Always bounded by the cell count
    /// — extra workers would idle. Used by the bench harness's thread
    /// scaling curve and the engines' `workers` builder knob.
    pub worker_cap: Option<usize>,
}

/// The result of one discovery batch.
#[derive(Debug)]
pub struct Batch {
    /// Discovered triggers in canonical (sequential) discovery order.
    pub discovered: Vec<Discovered>,
    /// Number of workers whose batch reported a panic. Non-zero means
    /// the partial parallel output was discarded and the whole batch
    /// recomputed sequentially, so `discovered` is complete and
    /// bit-identical to a panic-free run either way.
    pub panicked_workers: u32,
    /// Wall-clock nanoseconds each worker spent on its share, in
    /// worker-index order (a single entry when the batch ran on the
    /// calling thread — including the sequential recompute after a
    /// panic). Feeds the profiler's deterministic per-worker spans;
    /// the *values* vary run to run, the count and order do not.
    pub worker_nanos: Vec<u64>,
}

/// Evaluates a discovery batch (spinning up a throwaway pool) and
/// returns the discovered triggers in canonical (sequential) discovery
/// order. `slots` of `None` requests the seed batch (full
/// enumeration); otherwise the delta batch over the given new slots.
/// Engines use [`collect_batch`] with their own persistent pool; this
/// entry point exists for one-shot callers and tests.
pub fn collect_parallel(
    set: &TgdSet,
    instance: &Instance,
    slots: Option<&[usize]>,
    vars: FpVars,
    check_active: bool,
) -> Vec<Discovered> {
    let mut pool = DiscoveryPool::new(None);
    collect_batch(
        set,
        instance,
        slots,
        vars,
        check_active,
        BatchControl::default(),
        &mut pool,
    )
    .discovered
}

/// Evaluates a discovery batch on `pool`'s persistent workers, with
/// out-of-band [`BatchControl`]s, reporting worker panics instead of
/// propagating them.
///
/// ## Scheduling
///
/// The batch is a slot-major grid of `(slot, TGD)` cells. Workers
/// claim chunks of consecutive cells from an atomic cursor
/// (work-stealing): a skewed cell costs its own worker but never
/// idles the rest, and because each cell is still enumerated wholly
/// by one worker the canonical merge order is unaffected. Batches
/// that resolve to a single worker run inline on the calling thread
/// with the pool's resident scratch — no dispatch, no allocation
/// beyond the output.
///
/// ## Panic safety
///
/// Workers only read shared state, so a panicking worker cannot poison
/// anything; the only loss is its share of the batch. Rather than
/// propagate the panic (taking the whole chase down) or merge a hole
/// (silently losing triggers — unsound for the chase), the driver
/// discards all partial output and recomputes the batch sequentially
/// on the calling thread. The recomputation enumerates cells in
/// canonical order, so the result is bit-identical to a panic-free
/// batch; the panic count is surfaced for telemetry. The pool itself
/// survives (workers catch their panics and park again).
pub fn collect_batch(
    set: &TgdSet,
    instance: &Instance,
    slots: Option<&[usize]>,
    vars: FpVars,
    check_active: bool,
    ctrl: BatchControl<'_>,
    pool: &mut DiscoveryPool,
) -> Batch {
    let grid = CellGrid::new(set, slots);
    let workers = pool
        .target_workers()
        .min(ctrl.worker_cap.unwrap_or(usize::MAX))
        .min(grid.ncells)
        .max(1);
    let inline = |pool: &mut DiscoveryPool| {
        let start = std::time::Instant::now();
        let scratch = pool.inline_scratch();
        let mut out = Vec::new();
        let _ = grid.collect_range(
            &mut scratch.matcher,
            &mut scratch.probe,
            set,
            instance,
            vars,
            check_active,
            ctrl.cancel,
            0..grid.ncells,
            &mut out,
        );
        (out, elapsed_nanos(start))
    };
    let mut panicked = 0u32;
    let mut worker_nanos: Vec<u64> = Vec::with_capacity(workers);
    let mut keyed: Vec<Keyed> = if workers == 1 {
        let (out, nanos) = inline(pool);
        worker_nanos.push(nanos);
        out
    } else {
        // Chunked work-stealing cursor: small enough chunks to balance
        // skew, large enough to keep cursor contention negligible.
        let chunk = (grid.ncells / (workers * 4)).max(1);
        let cursor = AtomicUsize::new(0);
        let outputs: Vec<Mutex<(Vec<Keyed>, u64)>> =
            (0..workers).map(|_| Mutex::new((Vec::new(), 0))).collect();
        let job = |w: usize, scratch: &mut crate::pool::WorkerScratch| {
            let start = std::time::Instant::now();
            let mut out = Vec::new();
            loop {
                let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                if begin >= grid.ncells {
                    break;
                }
                let end = (begin + chunk).min(grid.ncells);
                if grid
                    .collect_range(
                        &mut scratch.matcher,
                        &mut scratch.probe,
                        set,
                        instance,
                        vars,
                        check_active,
                        ctrl.cancel,
                        begin..end,
                        &mut out,
                    )
                    .is_break()
                {
                    break;
                }
            }
            *outputs[w].lock().unwrap() = (out, elapsed_nanos(start));
        };
        panicked = pool
            .pool()
            .run_batch(workers, ctrl.inject_panic_worker, &job);
        if panicked > 0 {
            // Canonical sequential recompute; partial output discarded.
            let (out, nanos) = inline(pool);
            worker_nanos.push(nanos);
            out
        } else {
            let mut merged = Vec::new();
            for slot in &outputs {
                let (part, nanos) = std::mem::take(&mut *slot.lock().unwrap());
                merged.extend(part);
                worker_nanos.push(nanos);
            }
            merged
        }
    };
    // Each (slot_ord, tgd) cell lives wholly in one worker's output in
    // matcher order; a stable sort on the cell key therefore restores
    // the exact sequential discovery order.
    keyed.sort_by_key(|k| (k.slot_ord, k.tgd));
    Batch {
        discovered: keyed.into_iter().map(|k| k.item).collect(),
        panicked_workers: panicked,
        worker_nanos,
    }
}

#[inline]
fn elapsed_nanos(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::for_each_trigger_with;
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    #[test]
    fn parallel_seed_matches_sequential_order() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c). R(c,a). S(a).
             R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let par = collect_parallel(&set, &p.database, None, FpVars::SortedBody, true);
        let mut seq = Vec::new();
        let mut scratch = HomScratch::new();
        let _ = for_each_trigger_with(&mut scratch, &set, &p.database, &mut |id, b| {
            seq.push(Trigger {
                tgd: id,
                binding: b.clone(),
            });
            ControlFlow::Continue(())
        });
        assert_eq!(par.len(), seq.len());
        for (d, t) in par.iter().zip(seq.iter()) {
            assert_eq!(&d.trigger, t);
            assert_eq!(d.fp, t.fingerprint(set.tgd(t.tgd)));
            // Hint agrees with the definition of activeness.
            assert_eq!(
                d.inactive_hint,
                !t.is_active(set.tgd(t.tgd), &p.database),
                "hint diverged for {t:?}"
            );
            // An activeness-checked batch covers the whole instance.
            assert_eq!(d.watermark, p.database.len());
        }
    }

    #[test]
    fn worker_cap_bounds_fanout_and_preserves_order() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c). R(c,a). S(a).
             R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let free = collect_parallel(&set, &p.database, None, FpVars::SortedBody, true);
        let mut pool = DiscoveryPool::new(None);
        for cap in [1usize, 2, 8] {
            let batch = collect_batch(
                &set,
                &p.database,
                None,
                FpVars::SortedBody,
                true,
                BatchControl {
                    worker_cap: Some(cap),
                    ..BatchControl::default()
                },
                &mut pool,
            );
            // One timing per drafted worker, capped by the request and
            // the seed batch's cell count (one cell per TGD).
            assert!(!batch.worker_nanos.is_empty());
            assert!(batch.worker_nanos.len() <= cap.min(set.len()));
            assert_eq!(batch.discovered.len(), free.len(), "cap={cap}");
            for (a, b) in batch.discovered.iter().zip(free.iter()) {
                assert_eq!(a.trigger, b.trigger, "cap={cap}");
            }
        }
        // cap=1 batches run inline: the pool never spawned for them
        // alone, but the uncapped/over-1 batches above did.
        assert!(pool.spawned() || pool.target_workers() == 1);
    }

    #[test]
    fn pool_reuse_across_batches_is_bit_identical() {
        // The same pool serving many batches (the engine's real usage
        // pattern) must give the same answers as throwaway pools.
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c). R(c,a). S(a).
             R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let reference = collect_parallel(&set, &p.database, None, FpVars::SortedBody, true);
        let mut pool = DiscoveryPool::new(Some(3));
        for round in 0..10 {
            let batch = collect_batch(
                &set,
                &p.database,
                None,
                FpVars::SortedBody,
                true,
                BatchControl::default(),
                &mut pool,
            );
            assert_eq!(batch.discovered.len(), reference.len(), "round {round}");
            for (a, b) in batch.discovered.iter().zip(reference.iter()) {
                assert_eq!(a.trigger, b.trigger, "round {round}");
                assert_eq!(a.inactive_hint, b.inactive_hint, "round {round}");
            }
        }
    }

    #[test]
    fn parallel_delta_matches_sequential_order() {
        use crate::trigger::for_each_trigger_using_with;
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c).
             R(x,y), R(y,z) -> exists w. R(z,w).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let mut inst = p.database.clone();
        let r = vocab.lookup_pred("R").unwrap();
        let c = vocab.constant("c");
        let d = vocab.constant("d");
        let (s1, _) = inst.insert(chase_core::atom::Atom::new(
            r,
            vec![
                chase_core::term::Term::Const(c),
                chase_core::term::Term::Const(d),
            ],
        ));
        let slots = [s1];
        let par = collect_parallel(&set, &inst, Some(&slots), FpVars::SortedBody, false);
        let mut seq = Vec::new();
        let mut scratch = HomScratch::new();
        for &slot in &slots {
            let _ = for_each_trigger_using_with(&mut scratch, &set, &inst, slot, &mut |id, b| {
                seq.push(Trigger {
                    tgd: id,
                    binding: b.clone(),
                });
                ControlFlow::Continue(())
            });
        }
        assert_eq!(par.len(), seq.len());
        for (d, t) in par.iter().zip(seq.iter()) {
            assert_eq!(&d.trigger, t);
            assert!(!d.inactive_hint, "check_active=false never hints");
            assert_eq!(d.watermark, 0, "no activeness check, no refuted prefix");
        }
    }

    #[test]
    fn batch_work_model_separates_narrow_from_join() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        assert_eq!(set.join_bodies(), 1);
        // rows * narrow + rows^2 * join
        assert_eq!(estimated_batch_work(&set, 10), 10 + 100);
        // Join fan-out is capped; narrow cost keeps scaling linearly.
        let big = estimated_batch_work(&set, 100_000);
        assert_eq!(big, 100_000 + 100_000 * 256);
    }
}
