//! Batched, optionally parallel trigger discovery.
//!
//! The chase engines discover candidate triggers in batches: the seed
//! batch (all triggers on the database) and, after each application,
//! the delta batch (triggers whose body uses a newly inserted atom).
//! This module evaluates a batch either sequentially or fanned out
//! over [`std::thread::scope`] workers, partitioned round-robin by
//! TGD.
//!
//! ## Determinism invariants
//!
//! Parallel discovery is **bit-identical** to sequential discovery:
//!
//! 1. Workers only *read* the instance; all mutation (seen-set
//!    insertion, queue pushes, telemetry) happens on the driving
//!    thread after the merge.
//! 2. Every `(slot, TGD)` pair is enumerated wholly by one worker, in
//!    the matcher's canonical order, so a stable sort of the combined
//!    output by `(slot position, TGD id)` reproduces the exact
//!    sequential discovery order regardless of scheduling or worker
//!    count.
//! 3. Workers may *pre-screen* activeness. The result is attached as
//!    [`Discovered::inactive_hint`], never used to drop a trigger:
//!    queue length and contents stay identical to the sequential run,
//!    which keeps even the `Random` strategy reproducible. The hint is
//!    sound to consume at pop time because inactivity is monotone —
//!    instances only grow, so a trigger inactive at discovery time is
//!    still inactive later. Unhinted triggers are re-checked
//!    sequentially at apply time as usual.
//!
//! These invariants make the *default* telemetry stream of a parallel
//! run identical to the sequential one. The opt-in profiling stream is
//! deterministic in shape only: per-worker `worker` spans appear in
//! worker-index order with run-varying timings.
//!
//! Worker scratches are allocated per batch, so the parallel path is
//! *not* allocation-free — it trades allocations for cores and only
//! engages above the engine's `parallel_threshold`.

use chase_core::cancel::CancelToken;
use chase_core::hom::HomScratch;
use chase_core::ids::VarId;
use chase_core::instance::Instance;
use chase_core::tgd::{Tgd, TgdId, TgdSet};

use crate::trigger::{
    for_each_trigger_of_tgd_using_with, for_each_trigger_of_tgd_with, head_satisfied_with, Trigger,
    TriggerFp,
};
use std::ops::ControlFlow;

/// Whether a chase engine may fan trigger discovery out over threads.
///
/// `On` is observationally identical to `Off` — same final instance,
/// same step count, same telemetry stream — by the invariants
/// documented in [`crate::driver`]. It only changes wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Single-threaded discovery (allocation-free steady state).
    #[default]
    Off,
    /// Discovery batches above the engine's `parallel_threshold` are
    /// evaluated by a scoped thread pool partitioned by TGD.
    On,
}

/// Which variable layout identifies a trigger fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpVars {
    /// All body variables in sorted order (restricted & oblivious).
    SortedBody,
    /// Frontier variables only (semi-oblivious identification).
    Frontier,
}

impl FpVars {
    /// The identifying variable slice of `tgd` under this layout.
    #[inline]
    pub fn of(self, tgd: &Tgd) -> &[VarId] {
        match self {
            FpVars::SortedBody => tgd.sorted_body_vars(),
            FpVars::Frontier => tgd.frontier(),
        }
    }
}

/// One discovered candidate trigger, in canonical discovery order
/// after the merge.
#[derive(Debug, Clone)]
pub struct Discovered {
    /// The trigger itself (owned binding).
    pub trigger: Trigger,
    /// Its interned fingerprint under the batch's [`FpVars`] layout.
    pub fp: TriggerFp,
    /// `true` if a worker already proved the trigger inactive on the
    /// instance it was discovered against. Sound to reuse later
    /// (inactivity is monotone); `false` means "unknown, re-check".
    pub inactive_hint: bool,
    /// Satisfaction watermark: when the prescreen *refuted* head
    /// satisfaction (`inactive_hint == false` with activeness checking
    /// on), this records the instance length the refutation covered.
    /// A later recheck only needs to scan atoms inserted at slot ≥
    /// this watermark — instance growth is monotone, so the refuted
    /// prefix stays refuted. `0` means "nothing refuted yet" (full
    /// check required), which is also what batches without activeness
    /// checking report.
    pub watermark: usize,
}

/// Minimum number of batch rows (delta slots, or seed atoms) before
/// parallel discovery can amortise its per-batch thread-spawn and
/// scratch-allocation overhead.
pub const MIN_PARALLEL_ROWS: usize = 2;

/// Cap on the per-row fan-out factor charged to join bodies in
/// [`estimated_batch_work`]: beyond this the index-driven matcher's
/// real cost stops growing with the batch.
const JOIN_ROW_CAP: usize = 256;

/// Estimated matcher work of a discovery batch of `rows` rows (delta
/// slots, or database atoms for the seed batch) against `set`.
///
/// Single-atom ("narrow") bodies cost about one index probe per row;
/// join bodies fan each row out against candidates drawn from the rest
/// of the batch, costing roughly `rows` probes per row (capped). The
/// engines' `go_parallel` gating compares this against their
/// `parallel_threshold`, so large-but-narrow batches (hundreds of rows
/// against width-1 bodies, where a sequential pass is a few
/// microseconds) stay sequential while genuinely quadratic batches fan
/// out.
pub fn estimated_batch_work(set: &TgdSet, rows: usize) -> usize {
    let narrow = set.len() - set.join_bodies();
    rows.saturating_mul(narrow).saturating_add(
        rows.saturating_mul(rows.min(JOIN_ROW_CAP))
            .saturating_mul(set.join_bodies()),
    )
}

/// Sort key slot for the merge: position of the delta slot in the
/// batch (0 for seed batches) and the TGD id.
struct Keyed {
    slot_ord: u32,
    tgd: u32,
    item: Discovered,
}

/// Enumerates one `(slot_ord, tgd)` cell into `out`. `slot` of `None`
/// means full (seed) enumeration of the TGD.
#[allow(clippy::too_many_arguments)]
fn collect_cell(
    scratch: &mut HomScratch,
    probe: &mut HomScratch,
    id: TgdId,
    tgd: &Tgd,
    instance: &Instance,
    slot_ord: u32,
    slot: Option<usize>,
    vars: FpVars,
    check_active: bool,
    out: &mut Vec<Keyed>,
) {
    // A refuting prescreen covers the whole instance as it stands now.
    let covered = instance.len();
    let mut visit = |id: TgdId, b: &chase_core::subst::Binding| {
        let fp = TriggerFp::of(id, b, vars.of(tgd));
        // Pre-screen: seed the head matcher with the full body
        // binding (sound — see `Trigger::is_active`). Shares
        // `head_satisfied_with` with the sequential pop-time check so
        // hints and rechecks always agree bit-for-bit.
        let inactive_hint = check_active && head_satisfied_with(probe, tgd, instance, b, 0);
        let watermark = if check_active { covered } else { 0 };
        out.push(Keyed {
            slot_ord,
            tgd: id.0,
            item: Discovered {
                trigger: Trigger {
                    tgd: id,
                    binding: b.clone(),
                },
                fp,
                inactive_hint,
                watermark,
            },
        });
        ControlFlow::Continue(())
    };
    let _ = match slot {
        Some(s) => for_each_trigger_of_tgd_using_with(scratch, id, tgd, instance, s, &mut visit),
        None => for_each_trigger_of_tgd_with(scratch, id, tgd, instance, &mut visit),
    };
}

/// Worker loop: enumerate every `(slot, tgd)` cell whose TGD index is
/// congruent to `worker` modulo `workers`, slot-major then TGD-minor,
/// so each worker's output is already in canonical order. A set
/// `cancel` token is polled between cells; a cancelled worker returns
/// its partial output (the governed engine then stops before consuming
/// it, so determinism is unaffected).
#[allow(clippy::too_many_arguments)]
fn worker_collect(
    set: &TgdSet,
    instance: &Instance,
    slots: Option<&[usize]>,
    vars: FpVars,
    check_active: bool,
    worker: usize,
    workers: usize,
    cancel: Option<&CancelToken>,
) -> Vec<Keyed> {
    let mut scratch = HomScratch::new();
    let mut probe = HomScratch::new();
    let mut out = Vec::new();
    match slots {
        None => {
            for (idx, (id, tgd)) in set.iter().enumerate() {
                if idx % workers != worker {
                    continue;
                }
                if cancel.is_some_and(|c| c.is_cancelled()) {
                    return out;
                }
                collect_cell(
                    &mut scratch,
                    &mut probe,
                    id,
                    tgd,
                    instance,
                    0,
                    None,
                    vars,
                    check_active,
                    &mut out,
                );
            }
        }
        Some(slots) => {
            for (ord, &slot) in slots.iter().enumerate() {
                for (idx, (id, tgd)) in set.iter().enumerate() {
                    if idx % workers != worker {
                        continue;
                    }
                    if cancel.is_some_and(|c| c.is_cancelled()) {
                        return out;
                    }
                    collect_cell(
                        &mut scratch,
                        &mut probe,
                        id,
                        tgd,
                        instance,
                        ord as u32,
                        Some(slot),
                        vars,
                        check_active,
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// Out-of-band controls for one discovery batch: a cancellation token
/// polled by workers between cells, and (for fault-injection tests) a
/// worker index instructed to panic.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchControl<'a> {
    /// Polled by every worker between cells; a cancelled batch returns
    /// early with partial output, which the governed engine then
    /// discards by stopping at its next poll point.
    pub cancel: Option<&'a CancelToken>,
    /// Fault injection: the worker with this index (if spawned) panics
    /// instead of enumerating. `None` in production.
    pub inject_panic_worker: Option<u32>,
    /// Caps the worker count (`None` = one per available core). Still
    /// bounded by the TGD count — the partition is by TGD index, so
    /// extra workers would idle. Used by the bench harness's thread
    /// scaling curve and the engines' `workers` builder knob.
    pub worker_cap: Option<usize>,
}

/// The result of one discovery batch.
#[derive(Debug)]
pub struct Batch {
    /// Discovered triggers in canonical (sequential) discovery order.
    pub discovered: Vec<Discovered>,
    /// Number of workers whose join reported a panic. Non-zero means
    /// the partial parallel output was discarded and the whole batch
    /// recomputed sequentially, so `discovered` is complete and
    /// bit-identical to a panic-free run either way.
    pub panicked_workers: u32,
    /// Wall-clock nanoseconds each worker spent on its share, in
    /// worker-index order (a single entry when the batch ran on the
    /// calling thread — including the sequential recompute after a
    /// panic). Feeds the profiler's deterministic per-worker spans;
    /// the *values* vary run to run, the count and order do not.
    pub worker_nanos: Vec<u64>,
}

/// Evaluates a discovery batch in parallel and returns the discovered
/// triggers in canonical (sequential) discovery order. `slots` of
/// `None` requests the seed batch (full enumeration); otherwise the
/// delta batch over the given new slots.
pub fn collect_parallel(
    set: &TgdSet,
    instance: &Instance,
    slots: Option<&[usize]>,
    vars: FpVars,
    check_active: bool,
) -> Vec<Discovered> {
    collect_batch(
        set,
        instance,
        slots,
        vars,
        check_active,
        BatchControl::default(),
    )
    .discovered
}

/// [`collect_parallel`] with out-of-band [`BatchControl`]s, reporting
/// worker panics instead of propagating them.
///
/// ## Panic safety
///
/// Workers only read shared state, so a panicking worker cannot poison
/// anything; the only loss is its share of the batch. Rather than
/// propagate the panic (taking the whole chase down) or merge a hole
/// (silently losing triggers — unsound for the chase), the driver
/// discards all partial output and recomputes the batch sequentially
/// on the calling thread. The recomputation enumerates cells in
/// canonical order, so the result is bit-identical to a panic-free
/// batch; the panic count is surfaced for telemetry.
pub fn collect_batch(
    set: &TgdSet,
    instance: &Instance,
    slots: Option<&[usize]>,
    vars: FpVars,
    check_active: bool,
    ctrl: BatchControl<'_>,
) -> Batch {
    let workers = ctrl
        .worker_cap
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(set.len())
        .max(1);
    let mut panicked = 0u32;
    let mut worker_nanos: Vec<u64> = Vec::with_capacity(workers);
    let timed_collect = |worker: usize, workers: usize| {
        let start = std::time::Instant::now();
        let out = worker_collect(
            set,
            instance,
            slots,
            vars,
            check_active,
            worker,
            workers,
            ctrl.cancel,
        );
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        (out, nanos)
    };
    let mut keyed: Vec<Keyed> = if workers == 1 {
        let (out, nanos) = timed_collect(0, 1);
        worker_nanos.push(nanos);
        out
    } else {
        let mut parts: Vec<Vec<Keyed>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let inject = ctrl.inject_panic_worker == Some(w as u32);
                    let timed_collect = &timed_collect;
                    scope.spawn(move || {
                        if inject {
                            crate::faults::inject_worker_panic();
                        }
                        timed_collect(w, workers)
                    })
                })
                .collect();
            for h in handles {
                match h.join() {
                    Ok((part, nanos)) => {
                        parts.push(part);
                        worker_nanos.push(nanos);
                    }
                    Err(_panic_payload) => panicked += 1,
                }
            }
        });
        if panicked > 0 {
            let (out, nanos) = timed_collect(0, 1);
            worker_nanos.clear();
            worker_nanos.push(nanos);
            out
        } else {
            parts.into_iter().flatten().collect()
        }
    };
    // Each (slot_ord, tgd) cell lives wholly in one worker's output in
    // matcher order; a stable sort on the cell key therefore restores
    // the exact sequential discovery order.
    keyed.sort_by_key(|k| (k.slot_ord, k.tgd));
    Batch {
        discovered: keyed.into_iter().map(|k| k.item).collect(),
        panicked_workers: panicked,
        worker_nanos,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trigger::for_each_trigger_with;
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    #[test]
    fn parallel_seed_matches_sequential_order() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c). R(c,a). S(a).
             R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let par = collect_parallel(&set, &p.database, None, FpVars::SortedBody, true);
        let mut seq = Vec::new();
        let mut scratch = HomScratch::new();
        let _ = for_each_trigger_with(&mut scratch, &set, &p.database, &mut |id, b| {
            seq.push(Trigger {
                tgd: id,
                binding: b.clone(),
            });
            ControlFlow::Continue(())
        });
        assert_eq!(par.len(), seq.len());
        for (d, t) in par.iter().zip(seq.iter()) {
            assert_eq!(&d.trigger, t);
            assert_eq!(d.fp, t.fingerprint(set.tgd(t.tgd)));
            // Hint agrees with the definition of activeness.
            assert_eq!(
                d.inactive_hint,
                !t.is_active(set.tgd(t.tgd), &p.database),
                "hint diverged for {t:?}"
            );
            // An activeness-checked batch covers the whole instance.
            assert_eq!(d.watermark, p.database.len());
        }
    }

    #[test]
    fn worker_cap_bounds_fanout_and_preserves_order() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c). R(c,a). S(a).
             R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let free = collect_parallel(&set, &p.database, None, FpVars::SortedBody, true);
        for cap in [1usize, 2, 8] {
            let batch = collect_batch(
                &set,
                &p.database,
                None,
                FpVars::SortedBody,
                true,
                BatchControl {
                    worker_cap: Some(cap),
                    ..BatchControl::default()
                },
            );
            // One timing per spawned worker, capped by the request and
            // the TGD count.
            assert!(!batch.worker_nanos.is_empty());
            assert!(batch.worker_nanos.len() <= cap.min(set.len()));
            assert_eq!(batch.discovered.len(), free.len(), "cap={cap}");
            for (a, b) in batch.discovered.iter().zip(free.iter()) {
                assert_eq!(a.trigger, b.trigger, "cap={cap}");
            }
        }
    }

    #[test]
    fn parallel_delta_matches_sequential_order() {
        use crate::trigger::for_each_trigger_using_with;
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(a,b). R(b,c).
             R(x,y), R(y,z) -> exists w. R(z,w).
             R(x,y) -> S(y).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let mut inst = p.database.clone();
        let r = vocab.lookup_pred("R").unwrap();
        let c = vocab.constant("c");
        let d = vocab.constant("d");
        let (s1, _) = inst.insert(chase_core::atom::Atom::new(
            r,
            vec![
                chase_core::term::Term::Const(c),
                chase_core::term::Term::Const(d),
            ],
        ));
        let slots = [s1];
        let par = collect_parallel(&set, &inst, Some(&slots), FpVars::SortedBody, false);
        let mut seq = Vec::new();
        let mut scratch = HomScratch::new();
        for &slot in &slots {
            let _ = for_each_trigger_using_with(&mut scratch, &set, &inst, slot, &mut |id, b| {
                seq.push(Trigger {
                    tgd: id,
                    binding: b.clone(),
                });
                ControlFlow::Continue(())
            });
        }
        assert_eq!(par.len(), seq.len());
        for (d, t) in par.iter().zip(seq.iter()) {
            assert_eq!(&d.trigger, t);
            assert!(!d.inactive_hint, "check_active=false never hints");
            assert_eq!(d.watermark, 0, "no activeness check, no refuted prefix");
        }
    }

    #[test]
    fn batch_work_model_separates_narrow_from_join() {
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "R(x,y), R(y,z) -> exists w. R(z,w).
             S(x) -> exists u. T(x,u).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        assert_eq!(set.join_bodies(), 1);
        // rows * narrow + rows^2 * join
        assert_eq!(estimated_batch_work(&set, 10), 10 + 100);
        // Join fan-out is capped; narrow cost keeps scaling linearly.
        let big = estimated_batch_work(&set, 100_000);
        assert_eq!(big, 100_000 + 100_000 * 256);
    }
}
