//! # chase-engine
//!
//! Chase procedures over the `chase-core` substrate, implementing
//! Section 3 and Section 4 of *All-Instances Restricted Chase
//! Termination* (Gogacz, Marcinkowski & Pieris, PODS 2020):
//!
//! * [`restricted`] — the restricted (standard) chase with pluggable,
//!   fairness-relevant strategies;
//! * [`oblivious`] — the oblivious and semi-oblivious chase;
//! * [`real_oblivious`] — the real oblivious chase `ochase(D,T)` as a
//!   labelled graph with an unambiguous parent relation (Def 3.3);
//! * [`relations`] — the stop (`≺s`) and before (`≺b`) relations;
//! * [`chaseable`] — chaseable sets and the Theorem 5.3 round-trip;
//! * [`fairness`] — the executable Fairness-Theorem construction;
//! * [`critical`] — the critical database of the oblivious chase;
//! * [`derivation`] — recorded derivations, replay and validation;
//! * [`trigger`] / [`skolem`] — triggers, activeness, null invention;
//! * [`driver`] — batched, optionally parallel, panic-safe trigger
//!   discovery;
//! * [`pool`] — the persistent work-stealing worker pool behind
//!   parallel discovery and parallel restriction checks;
//! * [`governor`] — budgets, deadlines and cooperative cancellation
//!   for chase runs;
//! * [`faults`] — deterministic fault injection for resilience tests;
//! * [`task`] — owned, panic-contained chase tasks (the unit of work
//!   a resident chase server schedules);
//! * [`seed`] — frozen pre-optimisation engines (equivalence oracle
//!   and benchmark baseline).

#![warn(missing_docs)]
// `deny` rather than `forbid`: the persistent worker pool ([`pool`])
// needs one audited lifetime-erasure site; every other module stays
// unsafe-free.
#![deny(unsafe_code)]

pub mod chaseable;
pub mod critical;
pub mod derivation;
pub mod dot;
pub mod driver;
pub mod fairness;
pub mod faults;
pub mod governor;
pub mod oblivious;
pub mod pool;
pub(crate) mod profiling;
pub use profiling::DEFAULT_PROFILE_SAMPLE_EVERY;
pub mod query;
pub mod real_oblivious;
pub mod relations;
pub mod restricted;
pub mod seed;
pub mod skolem;
pub mod task;
pub mod trigger;
pub mod universal;

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    pub use crate::chaseable::{
        chaseable_from_derivation, check_chaseable, derivation_from_chaseable, ChaseableFault,
    };
    pub use crate::critical::critical_database;
    pub use crate::derivation::{Derivation, DerivationFault, Step};
    pub use crate::dot::{derivation_to_dot, ochase_to_dot};
    pub use crate::driver::Parallelism;
    pub use crate::fairness::{is_fair_within_horizon, persistently_active, repair, RepairOutcome};
    pub use crate::faults::{FaultPlan, FlakyWriter, WorkerPanic};
    pub use crate::governor::ResourceGovernor;
    pub use crate::oblivious::{ObliviousChase, ObliviousRun};
    pub use crate::query::{contained_in, ConjunctiveQuery, QueryError};
    pub use crate::real_oblivious::{NodeId, OchaseLimits, OchaseNode, RealOchase};
    pub use crate::relations::{stops, OchaseRelations};
    pub use crate::restricted::{Budget, ChaseRun, Outcome, RestrictedChase, Strategy};
    pub use crate::seed::{SeedObliviousChase, SeedRestrictedChase};
    pub use crate::skolem::{SkolemPolicy, SkolemTable};
    pub use crate::task::{run_chase_task, ChaseTaskSpec, TaskEngine, TaskError, TaskOutput};
    pub use crate::trigger::{active_triggers, all_triggers, Trigger, TriggerFp};
    pub use crate::universal::{core_of, is_core};
}
