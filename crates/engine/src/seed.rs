//! Frozen pre-optimisation chase engines, kept as the executable
//! specification of engine behaviour and as the baseline side of the
//! hot-path benchmarks (`BENCH_hotpath.json`).
//!
//! These engines deliberately reproduce the original implementation
//! choices the optimised engines replaced:
//!
//! * homomorphism search through [`chase_core::hom::reference`] (the
//!   recursive matcher that allocates a candidate vector per node);
//! * trigger identity via owned `(TgdId, Vec<Term>)` keys;
//! * delta enumeration that clones the new atom and rebuilds the
//!   "body minus position i" vector per position;
//! * activeness checks through a materialised frontier restriction
//!   `h|fr(σ)`.
//!
//! Because the optimised matcher enumerates in exactly the reference
//! order and the fingerprints refine exactly the key equivalence, a
//! seed run and an optimised run are **bit-identical** (same steps,
//! same outcome, same instance, nulls included). The equivalence
//! property suite drives both engines over random programs to pin
//! this down.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use chase_core::atom::Atom;
use chase_core::hom::reference;
use chase_core::ids::fx_set;
use chase_core::instance::Instance;
use chase_core::subst::Binding;
use chase_core::term::Term;
use chase_core::tgd::TgdSet;

use crate::derivation::Derivation;
use crate::oblivious::ObliviousRun;
use crate::restricted::{Budget, ChaseRun, Outcome, Strategy};
use crate::skolem::{SkolemPolicy, SkolemTable};
use crate::trigger::Trigger;

/// Enumerates every trigger with the reference matcher, cloning one
/// [`Trigger`] per homomorphism (original behaviour).
fn seed_for_each_trigger(
    set: &TgdSet,
    instance: &Instance,
    f: &mut dyn FnMut(Trigger) -> ControlFlow<()>,
) -> ControlFlow<()> {
    for (id, tgd) in set.iter() {
        let mut binding = Binding::new();
        let flow = reference::for_each_homomorphism(tgd.body(), instance, &mut binding, &mut |b| {
            f(Trigger {
                tgd: id,
                binding: b.clone(),
            })
        });
        if flow.is_break() {
            return ControlFlow::Break(());
        }
    }
    ControlFlow::Continue(())
}

/// Delta enumeration with the original allocation pattern: clones the
/// new atom, rebuilds the rest-of-body vector per position.
fn seed_for_each_trigger_using(
    set: &TgdSet,
    instance: &Instance,
    new_slot: usize,
    f: &mut dyn FnMut(Trigger) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let new_atom = instance.atom(new_slot);
    for (id, tgd) in set.iter() {
        for (i, body_atom) in tgd.body().iter().enumerate() {
            if body_atom.pred != new_atom.pred {
                continue;
            }
            let mut binding = Binding::new();
            let mut ok = true;
            for (p, &t) in body_atom.args.iter().zip(new_atom.args.iter()) {
                match *p {
                    Term::Var(v) => match binding.get(v) {
                        Some(bound) if bound != t => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => binding.push(v, t),
                    },
                    ground => {
                        if ground != t {
                            ok = false;
                            break;
                        }
                    }
                }
            }
            if !ok {
                continue;
            }
            let rest: Vec<Atom> = tgd
                .body()
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, a)| a.clone())
                .collect();
            let flow = reference::for_each_homomorphism(&rest, instance, &mut binding, &mut |b| {
                f(Trigger {
                    tgd: id,
                    binding: b.clone(),
                })
            });
            if flow.is_break() {
                return ControlFlow::Break(());
            }
        }
    }
    ControlFlow::Continue(())
}

/// Activeness by the book: materialise `h|fr(σ)` and probe the head
/// with the reference matcher.
fn seed_is_active(trigger: &Trigger, set: &TgdSet, instance: &Instance) -> bool {
    let tgd = set.tgd(trigger.tgd);
    let restricted = trigger.binding.restricted_to(tgd.frontier());
    !reference::exists_homomorphism(tgd.head(), instance, &restricted)
}

/// The frozen restricted-chase engine (see module docs).
#[derive(Debug, Clone)]
pub struct SeedRestrictedChase<'a> {
    set: &'a TgdSet,
    strategy: Strategy,
}

impl<'a> SeedRestrictedChase<'a> {
    /// Creates a seed engine with the FIFO strategy.
    pub fn new(set: &'a TgdSet) -> Self {
        SeedRestrictedChase {
            set,
            strategy: Strategy::Fifo,
        }
    }

    /// Selects the queue discipline.
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    fn pop(
        &self,
        queue: &mut VecDeque<Trigger>,
        rng: &mut Option<crate::restricted::XorShift64>,
    ) -> Option<Trigger> {
        if queue.is_empty() {
            return None;
        }
        match self.strategy {
            Strategy::Fifo => queue.pop_front(),
            Strategy::Lifo => queue.pop_back(),
            Strategy::Random(_) => {
                // invariant: the frozen run loop seeds `rng` with
                // `Some` exactly when the strategy is `Random`.
                let rng = rng.as_mut().expect("rng initialised for Random strategy");
                let i = rng.below(queue.len());
                queue.swap(i, 0);
                queue.pop_front()
            }
            Strategy::PriorityTgd => {
                // Naive realisation of the per-TGD-LIFO spec: newest
                // trigger of the smallest TGD id, removed in place so
                // the rest of the queue keeps its order.
                let min_tgd = queue.iter().map(|t| t.tgd).min()?;
                let i = queue
                    .iter()
                    .rposition(|t| t.tgd == min_tgd)
                    // invariant: `min_tgd` was just taken from this
                    // queue, so at least one element carries it.
                    .expect("min exists");
                queue.remove(i)
            }
        }
    }

    /// Runs the frozen restricted chase on `database` within `budget`.
    /// Derivations are not recorded (the field stays empty).
    pub fn run(&self, database: &Instance, budget: Budget) -> ChaseRun {
        let mut instance = database.clone();
        let mut skolem = SkolemTable::above(
            SkolemPolicy::PerTrigger,
            instance.iter().flat_map(|a| a.args.iter().copied()),
        );
        let mut queue: VecDeque<Trigger> = VecDeque::new();
        let mut seen = fx_set();
        let mut rng = match self.strategy {
            Strategy::Random(seed) => Some(crate::restricted::XorShift64::new(seed)),
            _ => None,
        };

        let _ = seed_for_each_trigger(self.set, &instance, &mut |t| {
            if seen.insert(t.key(self.set.tgd(t.tgd))) {
                queue.push_back(t);
            }
            ControlFlow::Continue(())
        });

        let mut steps = 0usize;
        while let Some(trigger) = self.pop(&mut queue, &mut rng) {
            if !seed_is_active(&trigger, self.set, &instance) {
                continue;
            }
            if steps >= budget.max_steps || instance.len() >= budget.max_atoms {
                queue.push_front(trigger);
                return ChaseRun {
                    outcome: Outcome::BudgetExhausted,
                    instance,
                    steps,
                    derivation: Derivation::default(),
                };
            }
            let tgd = self.set.tgd(trigger.tgd);
            let added = trigger.result(tgd, &mut skolem);
            let mut new_slots = Vec::with_capacity(added.len());
            for atom in added {
                let (slot, fresh) = instance.insert(atom);
                if fresh {
                    new_slots.push(slot);
                }
            }
            steps += 1;
            for slot in new_slots {
                let _ = seed_for_each_trigger_using(self.set, &instance, slot, &mut |t| {
                    if seen.insert(t.key(self.set.tgd(t.tgd))) {
                        queue.push_back(t);
                    }
                    ControlFlow::Continue(())
                });
            }
        }
        ChaseRun {
            outcome: Outcome::Terminated,
            instance,
            steps,
            derivation: Derivation::default(),
        }
    }
}

/// The frozen oblivious/semi-oblivious engine (see module docs).
#[derive(Debug, Clone)]
pub struct SeedObliviousChase<'a> {
    set: &'a TgdSet,
    policy: SkolemPolicy,
}

impl<'a> SeedObliviousChase<'a> {
    /// Creates a seed engine running the (fully) oblivious chase.
    pub fn new(set: &'a TgdSet) -> Self {
        SeedObliviousChase {
            set,
            policy: SkolemPolicy::PerTrigger,
        }
    }

    /// Switches to the semi-oblivious chase.
    pub fn semi_oblivious(mut self) -> Self {
        self.policy = SkolemPolicy::PerFrontier;
        self
    }

    /// Runs the frozen oblivious chase on `database` within `budget`.
    pub fn run(&self, database: &Instance, budget: Budget) -> ObliviousRun {
        let mut instance = database.clone();
        let mut skolem = SkolemTable::above(
            self.policy,
            instance.iter().flat_map(|a| a.args.iter().copied()),
        );
        let mut queue: VecDeque<Trigger> = VecDeque::new();
        let mut applied = fx_set();

        let key = |t: &Trigger, set: &TgdSet, policy: SkolemPolicy| {
            let tgd = set.tgd(t.tgd);
            match policy {
                SkolemPolicy::PerTrigger => t.key(tgd),
                SkolemPolicy::PerFrontier => (
                    t.tgd,
                    tgd.frontier()
                        .iter()
                        // invariant: a trigger's binding covers every
                        // body variable; the frontier is a subset.
                        .map(|&v| t.binding.get(v).expect("frontier bound"))
                        .collect(),
                ),
            }
        };

        let _ = seed_for_each_trigger(self.set, &instance, &mut |t| {
            if applied.insert(key(&t, self.set, self.policy)) {
                queue.push_back(t);
            }
            ControlFlow::Continue(())
        });

        let mut steps = 0usize;
        while let Some(trigger) = queue.pop_front() {
            if steps >= budget.max_steps || instance.len() >= budget.max_atoms {
                return ObliviousRun {
                    outcome: Outcome::BudgetExhausted,
                    instance,
                    steps,
                };
            }
            let tgd = self.set.tgd(trigger.tgd);
            let added = trigger.result(tgd, &mut skolem);
            steps += 1;
            let mut new_slots = Vec::new();
            for atom in added {
                let (slot, fresh) = instance.insert(atom);
                if fresh {
                    new_slots.push(slot);
                }
            }
            for slot in new_slots {
                let _ = seed_for_each_trigger_using(self.set, &instance, slot, &mut |t| {
                    if applied.insert(key(&t, self.set, self.policy)) {
                        queue.push_back(t);
                    }
                    ControlFlow::Continue(())
                });
            }
        }
        ObliviousRun {
            outcome: Outcome::Terminated,
            instance,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Parallelism;
    use crate::oblivious::ObliviousChase;
    use crate::restricted::RestrictedChase;
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    #[test]
    fn seed_and_optimised_restricted_agree() {
        let src = "
            R(a,b). R(b,c). R(c,a).
            R(x,y), R(y,z) -> exists w. R(z,w).
            R(x,y) -> S(y).
            S(x) -> exists u. T(x,u).
        ";
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        for strategy in [
            Strategy::Fifo,
            Strategy::Lifo,
            Strategy::Random(3),
            Strategy::PriorityTgd,
        ] {
            let budget = Budget::steps(60);
            let seed = SeedRestrictedChase::new(&set)
                .strategy(strategy)
                .run(&p.database, budget);
            let opt = RestrictedChase::new(&set)
                .strategy(strategy)
                .run(&p.database, budget);
            assert_eq!(seed.outcome, opt.outcome, "{strategy:?}");
            assert_eq!(seed.steps, opt.steps, "{strategy:?}");
            assert_eq!(seed.instance, opt.instance, "{strategy:?}");
            let par = RestrictedChase::new(&set)
                .strategy(strategy)
                .parallelism(Parallelism::On)
                .parallel_threshold(0)
                .run(&p.database, budget);
            assert_eq!(seed.steps, par.steps, "{strategy:?} parallel");
            assert_eq!(seed.instance, par.instance, "{strategy:?} parallel");
        }
    }

    #[test]
    fn seed_and_optimised_oblivious_agree() {
        let src = "
            R(a,b). R(b,c).
            R(x,y) -> exists z. S(y,z).
            S(u,v) -> exists w. R(v,w).
        ";
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        for semi in [false, true] {
            let budget = Budget::steps(90);
            let seed_engine = SeedObliviousChase::new(&set);
            let seed_engine = if semi {
                seed_engine.semi_oblivious()
            } else {
                seed_engine
            };
            let opt_engine = ObliviousChase::new(&set);
            let opt_engine = if semi {
                opt_engine.semi_oblivious()
            } else {
                opt_engine
            };
            let seed = seed_engine.run(&p.database, budget);
            let opt = opt_engine.run(&p.database, budget);
            assert_eq!(seed.outcome, opt.outcome, "semi={semi}");
            assert_eq!(seed.steps, opt.steps, "semi={semi}");
            assert_eq!(seed.instance, opt.instance, "semi={semi}");
        }
    }
}
