//! Task-ified chase runs: one self-contained, panic-contained unit of
//! work per request.
//!
//! The interactive entry points ([`RestrictedChase::run_governed_observed`],
//! [`ObliviousChase::run_governed_observed`]) borrow a pre-parsed TGD
//! set and let panics unwind to the caller — the right shape for a CLI
//! process that dies with the run. A resident server needs the
//! opposite: an **owned** description of the whole job
//! ([`ChaseTaskSpec`], `Send` by construction, so it can hop onto a
//! scheduler thread), compilation included, and a hard containment
//! boundary so one poisoned session cannot take the process down.
//! [`run_chase_task`] is that boundary: it compiles (unless handed a
//! pre-compiled [`ProgramInput::Compiled`] bundle), builds the engine,
//! runs it under the spec's governor, and converts any panic — real or
//! injected via [`FaultPlan::task_panic_at_step`] — into
//! [`TaskError::Panicked`].
//!
//! Pool sharing: a caller that runs many tasks (the chase server's
//! session runners) passes `Some(&mut pool)` to reuse one warm
//! [`DiscoveryPool`] across runs. The pool must target the same worker
//! count as the spec's `threads` (see
//! [`RestrictedChase::run_governed_observed_in`]); results are then
//! bit-identical to fresh-pool runs, which is what the server's
//! isolation suite asserts.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use chase_core::cancel::CancelToken;
use chase_core::compile::{compile, CompiledProgram};
use chase_core::instance::Instance;
use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;
use chase_telemetry::ChaseObserver;

use crate::driver::Parallelism;
use crate::faults::{silence_injected_panics, FaultPlan, InjectedWorkerPanic};
use crate::governor::{Budget, Outcome, ResourceGovernor};
use crate::oblivious::ObliviousChase;
use crate::pool::DiscoveryPool;
use crate::restricted::{RestrictedChase, Strategy};

/// Which chase procedure a task runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskEngine {
    /// The restricted (standard) chase under `strategy`.
    Restricted {
        /// Trigger-selection strategy for the run.
        strategy: Strategy,
    },
    /// The (semi-)oblivious chase.
    Oblivious {
        /// `true` for per-frontier Skolemisation (semi-oblivious).
        semi: bool,
    },
}

/// What a task runs: raw source (compiled inside the containment
/// boundary) or an already-compiled, `Arc`-shared program.
///
/// Raw source keeps the original contract — parse errors and parse
/// panics are contained per task, which is what one-shot callers want.
/// A [`CompiledProgram`] skips compilation entirely: the server's
/// program cache compiles once at admission and every session sharing
/// the rule set starts from the same immutable bundle. Results are
/// bit-identical either way ([`TaskOutput::fingerprint`] proves it in
/// the test suite).
#[derive(Debug, Clone)]
pub enum ProgramInput {
    /// Program text (database facts + TGDs) in the `chasectl` surface
    /// syntax; compiled inside the task so parse panics are contained
    /// too.
    Source(String),
    /// A pre-compiled program; the task clones nothing but the `Arc`.
    Compiled(Arc<CompiledProgram>),
}

/// An owned, `Send` description of one chase run: program (source or
/// compiled) plus everything needed to execute and stop it. Cloning is
/// cheap relative to a run; the spec is immutable once built.
#[derive(Debug, Clone)]
pub struct ChaseTaskSpec {
    /// The program to run.
    pub program: ProgramInput,
    /// Which engine to run.
    pub engine: TaskEngine,
    /// Step/atom budget.
    pub budget: Budget,
    /// Wall-clock deadline, measured from the moment the task starts
    /// (not from when it was enqueued).
    pub deadline: Option<Duration>,
    /// Worker threads: `None` for sequential, `Some(n)` for parallel
    /// discovery with `n` workers.
    pub threads: Option<usize>,
    /// Deterministic fault plan (tests and the server's isolation
    /// suite).
    pub faults: FaultPlan,
    /// Cooperative cancellation; the caller keeps a clone.
    pub cancel: CancelToken,
}

impl ChaseTaskSpec {
    /// A restricted-chase task over `source` with defaults everywhere
    /// else (FIFO, unbounded budget, no deadline, sequential).
    pub fn restricted(source: impl Into<String>) -> Self {
        ChaseTaskSpec {
            program: ProgramInput::Source(source.into()),
            engine: TaskEngine::Restricted {
                strategy: Strategy::Fifo,
            },
            budget: Budget::unbounded(),
            deadline: None,
            threads: None,
            faults: FaultPlan::none(),
            cancel: CancelToken::new(),
        }
    }

    /// A restricted-chase task over a pre-compiled program, defaults
    /// everywhere else; the task shares the `Arc` instead of parsing.
    pub fn compiled(program: Arc<CompiledProgram>) -> Self {
        ChaseTaskSpec {
            program: ProgramInput::Compiled(program),
            engine: TaskEngine::Restricted {
                strategy: Strategy::Fifo,
            },
            budget: Budget::unbounded(),
            deadline: None,
            threads: None,
            faults: FaultPlan::none(),
            cancel: CancelToken::new(),
        }
    }

    /// The governor this spec describes (deadline anchored now).
    pub fn governor(&self) -> ResourceGovernor {
        let gov = ResourceGovernor::from_budget(self.budget)
            .with_cancel(self.cancel.clone())
            .with_faults(self.faults);
        match self.deadline {
            Some(timeout) => gov.with_deadline_in(timeout),
            None => gov,
        }
    }
}

/// How a chase task failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The program source did not parse or translate; the message is
    /// the parser's diagnostic.
    Parse(String),
    /// The run panicked (a real bug, or an injected
    /// [`FaultPlan::task_panic_at_step`]); contained here, the process
    /// survives.
    Panicked(String),
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Parse(msg) => write!(f, "parse error: {msg}"),
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
        }
    }
}

impl std::error::Error for TaskError {}

/// The truthful result of a finished chase task.
#[derive(Debug, Clone)]
pub struct TaskOutput {
    /// How the run ended.
    pub outcome: Outcome,
    /// Trigger applications performed.
    pub steps: usize,
    /// The (possibly partial) result instance.
    pub instance: Instance,
    /// The vocabulary the instance's symbols live in.
    pub vocab: Vocabulary,
}

impl TaskOutput {
    /// Atoms in the result instance.
    pub fn atoms(&self) -> usize {
        self.instance.len()
    }

    /// A deterministic fingerprint of the run's observable result:
    /// outcome, step count and the canonical (sorted) rendering of the
    /// instance. Two runs of the same spec are bit-identical iff their
    /// fingerprints match — the server's isolation suite compares
    /// in-server fingerprints against direct [`run_chase_task`] runs.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = chase_core::ids::FxHasher::default();
        h.write(self.instance.display(&self.vocab).as_bytes());
        h.write_usize(self.steps);
        h.write_u8(match self.outcome {
            Outcome::Terminated => 0,
            Outcome::BudgetExhausted => 1,
            Outcome::DeadlineExceeded => 2,
            Outcome::Cancelled => 3,
        });
        h.finish()
    }
}

/// Renders a panic payload for [`TaskError::Panicked`].
fn describe_panic(payload: Box<dyn std::any::Any + Send>) -> String {
    if payload.downcast_ref::<InjectedWorkerPanic>().is_some() {
        return "injected task panic".to_string();
    }
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    "opaque panic payload".to_string()
}

/// Runs one chase task to completion behind a `catch_unwind` boundary.
///
/// Parsing, engine construction and the run itself all happen inside
/// the boundary: any panic (including an injected
/// [`FaultPlan::task_panic_at_step`]) becomes
/// [`TaskError::Panicked`] instead of unwinding into the caller's
/// scheduler. The injected-panic silencing hook is installed up front
/// so contained panics do not spam stderr.
///
/// `pool`: `Some` to reuse a caller-owned [`DiscoveryPool`] (it must
/// target `spec.threads` workers — the chase server keys its pool
/// cache by thread count to guarantee this); `None` runs with a fresh
/// per-run pool, identical behaviour either way.
///
/// The observer sees exactly the event stream a direct
/// `run_governed_observed` call would produce; on panic it may have
/// seen a prefix of that stream, which is truthful — those events did
/// happen.
pub fn run_chase_task<O: ChaseObserver + ?Sized>(
    spec: &ChaseTaskSpec,
    obs: &mut O,
    pool: Option<&mut DiscoveryPool>,
) -> Result<TaskOutput, TaskError> {
    silence_injected_panics();
    let result = catch_unwind(AssertUnwindSafe(|| run_task_inner(spec, obs, pool)));
    match result {
        Ok(inner) => inner,
        Err(payload) => Err(TaskError::Panicked(describe_panic(payload))),
    }
}

fn run_task_inner<O: ChaseObserver + ?Sized>(
    spec: &ChaseTaskSpec,
    obs: &mut O,
    pool: Option<&mut DiscoveryPool>,
) -> Result<TaskOutput, TaskError> {
    // Source input compiles here, inside the containment boundary;
    // compiled input is consumed by reference so a cache-hit session
    // does zero re-parse/re-plan work.
    match &spec.program {
        ProgramInput::Source(source) => {
            let compiled = compile(source).map_err(|e| TaskError::Parse(e.to_string()))?;
            run_task_on(spec, &compiled, obs, pool)
        }
        ProgramInput::Compiled(compiled) => run_task_on(spec, compiled, obs, pool),
    }
}

fn run_task_on<O: ChaseObserver + ?Sized>(
    spec: &ChaseTaskSpec,
    program: &CompiledProgram,
    obs: &mut O,
    pool: Option<&mut DiscoveryPool>,
) -> Result<TaskOutput, TaskError> {
    let set: &TgdSet = program.tgd_set();
    let gov = spec.governor();
    // A fresh fallback pool for pool-less callers, constructed exactly
    // as the engines' own entry points would (same `workers` argument),
    // so pooled and pool-less runs are indistinguishable.
    let mut fresh = DiscoveryPool::new(spec.threads);
    let pool = match pool {
        Some(shared) => shared,
        None => &mut fresh,
    };
    let (outcome, steps, instance) = match spec.engine {
        TaskEngine::Restricted { strategy } => {
            let mut engine = RestrictedChase::new(set).strategy(strategy);
            if let Some(n) = spec.threads {
                engine = engine.parallelism(Parallelism::On).workers(n);
            }
            let run = engine.run_governed_observed_in(program.database(), &gov, obs, pool);
            (run.outcome, run.steps, run.instance)
        }
        TaskEngine::Oblivious { semi } => {
            let mut engine = if semi {
                ObliviousChase::new(set).semi_oblivious()
            } else {
                ObliviousChase::new(set)
            };
            if let Some(n) = spec.threads {
                engine = engine.parallelism(Parallelism::On).workers(n);
            }
            let run = engine.run_governed_observed_in(program.database(), &gov, obs, pool);
            (run.outcome, run.steps, run.instance)
        }
    };
    Ok(TaskOutput {
        outcome,
        steps,
        instance,
        vocab: program.vocab().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_telemetry::NullObserver;

    const FINITE: &str = "R(a,b).\nR(x,y) -> S(x).\n";
    const INFINITE: &str = "R(a,b).\nR(x,y) -> exists z. R(y,z).\n";

    #[test]
    fn finite_task_terminates() {
        let spec = ChaseTaskSpec::restricted(FINITE);
        let out = run_chase_task(&spec, &mut NullObserver, None).unwrap();
        assert_eq!(out.outcome, Outcome::Terminated);
        assert_eq!(out.steps, 1);
        assert_eq!(out.atoms(), 2);
    }

    #[test]
    fn parse_errors_are_typed_not_panics() {
        let spec = ChaseTaskSpec::restricted("this is not a program");
        match run_chase_task(&spec, &mut NullObserver, None) {
            Err(TaskError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn injected_task_panic_is_contained() {
        let mut spec = ChaseTaskSpec::restricted(INFINITE);
        spec.budget = Budget::steps(100);
        spec.faults = FaultPlan {
            task_panic_at_step: Some(3),
            ..FaultPlan::default()
        };
        match run_chase_task(&spec, &mut NullObserver, None) {
            Err(TaskError::Panicked(msg)) => assert_eq!(msg, "injected task panic"),
            other => panic!("expected contained panic, got {other:?}"),
        }
    }

    #[test]
    fn fingerprints_are_reproducible_and_discriminating() {
        let spec = ChaseTaskSpec::restricted(FINITE);
        let a = run_chase_task(&spec, &mut NullObserver, None).unwrap();
        let b = run_chase_task(&spec, &mut NullObserver, None).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());

        let mut capped = ChaseTaskSpec::restricted(INFINITE);
        capped.budget = Budget::steps(5);
        let c = run_chase_task(&capped, &mut NullObserver, None).unwrap();
        assert_eq!(c.outcome, Outcome::BudgetExhausted);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn shared_pool_runs_are_bit_identical_to_fresh_pool_runs() {
        let mut spec = ChaseTaskSpec::restricted(INFINITE);
        spec.budget = Budget::steps(64);
        spec.threads = Some(2);
        let fresh = run_chase_task(&spec, &mut NullObserver, None).unwrap();
        let mut pool = DiscoveryPool::new(Some(2));
        for _ in 0..3 {
            let shared = run_chase_task(&spec, &mut NullObserver, Some(&mut pool)).unwrap();
            assert_eq!(shared.fingerprint(), fresh.fingerprint());
        }
    }

    #[test]
    fn compiled_input_is_bit_identical_to_source_input() {
        for (source, cap) in [(FINITE, usize::MAX), (INFINITE, 40)] {
            let mut from_source = ChaseTaskSpec::restricted(source);
            from_source.budget = Budget::steps(cap);
            let cold = run_chase_task(&from_source, &mut NullObserver, None).unwrap();

            let program = compile(source).unwrap();
            let mut from_compiled = ChaseTaskSpec::compiled(Arc::clone(&program));
            from_compiled.budget = Budget::steps(cap);
            // Re-running the same Arc many times mirrors a cache-hit
            // session storm: every run must match the cold compile.
            for _ in 0..3 {
                let warm = run_chase_task(&from_compiled, &mut NullObserver, None).unwrap();
                assert_eq!(warm.fingerprint(), cold.fingerprint());
                assert_eq!(warm.steps, cold.steps);
            }
        }
    }

    #[test]
    fn oblivious_task_runs() {
        let mut spec = ChaseTaskSpec::restricted(FINITE);
        spec.engine = TaskEngine::Oblivious { semi: true };
        let out = run_chase_task(&spec, &mut NullObserver, None).unwrap();
        assert_eq!(out.outcome, Outcome::Terminated);
    }
}
