//! The oblivious and semi-oblivious chase (Section 3.1).
//!
//! The oblivious chase applies every trigger — active or not — exactly
//! once; its result `I_{D,T}` is the unique ⊆-minimal instance
//! containing `D` closed under trigger applications. The semi-oblivious
//! variant identifies triggers that agree on the frontier. Both are
//! used as baselines (E1, E8, E9) and as the substrate of the
//! MFA-style termination check in `tgd-classes`.
//!
//! Like [`crate::restricted`], the loop identifies triggers by packed
//! [`TriggerFp`] fingerprints (keyed on the frontier image under the
//! semi-oblivious policy), enumerates deltas through a reused
//! [`HomScratch`], and can fan discovery batches out over threads via
//! [`Parallelism::On`] with bit-identical results.

use std::collections::VecDeque;
use std::ops::ControlFlow;

use chase_core::hom::HomScratch;
use chase_core::ids::fx_set;
use chase_core::instance::Instance;
use chase_core::tgd::TgdSet;
use chase_telemetry::{
    emit, emit_detail, span_enter, span_enter_sampled, spans, ChaseObserver, EngineKind, Event,
    NullObserver, NO_TGD,
};

use crate::driver::{
    collect_batch, estimated_batch_work, BatchControl, FpVars, Parallelism, MIN_PARALLEL_ROWS,
};
use crate::governor::{Budget, Outcome, ResourceGovernor};
use crate::pool::DiscoveryPool;
use crate::profiling::{
    emit_profile_sample, emit_worker_spans, DEFAULT_HEARTBEAT_EVERY, DEFAULT_PROFILE_SAMPLE_EVERY,
};
use crate::skolem::{SkolemPolicy, SkolemTable};
use crate::trigger::{for_each_trigger_using_with, for_each_trigger_with, Trigger, TriggerFp};

/// The result of an oblivious chase run.
#[derive(Debug, Clone)]
pub struct ObliviousRun {
    /// Terminated (fixpoint) or out of budget.
    pub outcome: Outcome,
    /// The final instance.
    pub instance: Instance,
    /// Trigger applications performed (including ones that re-derived
    /// an existing atom).
    pub steps: usize,
}

/// A configured oblivious-chase engine.
#[derive(Debug, Clone)]
pub struct ObliviousChase<'a> {
    set: &'a TgdSet,
    policy: SkolemPolicy,
    parallelism: Parallelism,
    parallel_threshold: usize,
    workers: Option<usize>,
    heartbeat_every: u64,
    profile_sample_every: u64,
}

impl<'a> ObliviousChase<'a> {
    /// Creates an engine running the (fully) oblivious chase.
    pub fn new(set: &'a TgdSet) -> Self {
        ObliviousChase {
            set,
            policy: SkolemPolicy::PerTrigger,
            parallelism: Parallelism::Off,
            parallel_threshold: 32_768,
            workers: None,
            heartbeat_every: DEFAULT_HEARTBEAT_EVERY,
            profile_sample_every: DEFAULT_PROFILE_SAMPLE_EVERY,
        }
    }

    /// Switches to the semi-oblivious chase (nulls keyed by frontier).
    pub fn semi_oblivious(mut self) -> Self {
        self.policy = SkolemPolicy::PerFrontier;
        self
    }

    /// Enables or disables parallel trigger discovery. Results are
    /// bit-identical either way; see [`crate::driver`].
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Minimum [`estimated_batch_work`] (a join-aware model over batch
    /// rows — instance atoms for the seed batch, fresh atoms for a
    /// delta batch — and per-TGD body width) before a discovery batch
    /// is fanned out under [`Parallelism::On`]. A threshold of `0`
    /// forces every batch parallel regardless of size.
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.parallel_threshold = threshold;
        self
    }

    /// Caps the number of parallel discovery workers (`None` = one per
    /// available core, still bounded by the TGD count). Results stay
    /// bit-identical for any cap; the bench harness sweeps this for
    /// its thread scaling curve.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Sets the step cadence of the profiling stream's periodic
    /// memory/heartbeat samples (default 1024; see
    /// [`crate::restricted::RestrictedChase::heartbeat_every`]).
    pub fn heartbeat_every(mut self, steps: u64) -> Self {
        self.heartbeat_every = steps.max(1);
        self
    }

    /// Sets the step-span sampling cadence (default 16, step 0 always
    /// sampled; `1` spans every step — see
    /// [`crate::restricted::RestrictedChase::profile_sample_every`]).
    pub fn profile_sample_every(mut self, steps: u64) -> Self {
        self.profile_sample_every = steps.max(1);
        self
    }

    fn go_parallel(&self, batch_rows: usize) -> bool {
        if self.parallelism != Parallelism::On {
            return false;
        }
        if self.parallel_threshold == 0 {
            return true;
        }
        batch_rows >= MIN_PARALLEL_ROWS
            && estimated_batch_work(self.set, batch_rows) >= self.parallel_threshold
    }

    /// The fingerprint layout identifying triggers under the policy.
    fn fp_vars(&self) -> FpVars {
        match self.policy {
            SkolemPolicy::PerTrigger => FpVars::SortedBody,
            SkolemPolicy::PerFrontier => FpVars::Frontier,
        }
    }

    /// Runs the chase on `database` within `budget`.
    ///
    /// Trigger identity follows the paper: a trigger `(σ, h)` is
    /// applied at most once; under the semi-oblivious policy triggers
    /// agreeing on `h|fr(σ)` are identified.
    pub fn run(&self, database: &Instance, budget: Budget) -> ObliviousRun {
        self.run_observed(database, budget, &mut NullObserver)
    }

    /// Runs the chase, streaming telemetry [`Event`]s to `obs`. The
    /// oblivious chase performs no activeness checks, so the event
    /// stream never contains `trigger_checked`/`trigger_deactivated`.
    pub fn run_observed<O: ChaseObserver + ?Sized>(
        &self,
        database: &Instance,
        budget: Budget,
        obs: &mut O,
    ) -> ObliviousRun {
        self.run_governed_observed(database, &ResourceGovernor::from_budget(budget), obs)
    }

    /// Runs the chase under a full [`ResourceGovernor`] (budget +
    /// deadline + cancellation + fault plan).
    pub fn run_governed(&self, database: &Instance, gov: &ResourceGovernor) -> ObliviousRun {
        self.run_governed_observed(database, gov, &mut NullObserver)
    }

    /// [`ObliviousChase::run_governed`] with telemetry. The governor is
    /// polled before seed discovery and at the top of every queue
    /// iteration; an interrupted run emits one
    /// [`Event::RunInterrupted`] and returns the truthful partial
    /// result.
    ///
    /// A profiling observer additionally receives the span / memory /
    /// heartbeat stream (as in
    /// [`crate::restricted::RestrictedChase::run_governed_observed`],
    /// minus `restriction_check` — the oblivious chase performs no
    /// activeness checks).
    pub fn run_governed_observed<O: ChaseObserver + ?Sized>(
        &self,
        database: &Instance,
        gov: &ResourceGovernor,
        obs: &mut O,
    ) -> ObliviousRun {
        // One persistent pool handle per run; threads are spawned
        // lazily on the first batch that fans out, then reused (with
        // their resident scratches) for every later batch.
        let mut pool = DiscoveryPool::new(self.workers);
        self.run_governed_observed_in(database, gov, obs, &mut pool)
    }

    /// [`ObliviousChase::run_governed_observed`] against a
    /// caller-provided worker pool (see
    /// [`crate::restricted::RestrictedChase::run_governed_observed_in`]
    /// for the sharing contract: the pool must target
    /// [`ObliviousChase::workers`], and carries no run-scoped state, so
    /// reuse across runs is bit-identical to a fresh pool).
    pub fn run_governed_observed_in<O: ChaseObserver + ?Sized>(
        &self,
        database: &Instance,
        gov: &ResourceGovernor,
        obs: &mut O,
        pool: &mut DiscoveryPool,
    ) -> ObliviousRun {
        let run_guard = span_enter(obs, spans::RUN, NO_TGD);
        let run = self.run_inner(database, gov, obs, pool);
        run_guard.exit(obs);
        run
    }

    fn run_inner<O: ChaseObserver + ?Sized>(
        &self,
        database: &Instance,
        gov: &ResourceGovernor,
        obs: &mut O,
        pool: &mut DiscoveryPool,
    ) -> ObliviousRun {
        let run_start = (obs.enabled() && obs.profiling()).then(std::time::Instant::now);
        let engine_kind = match self.policy {
            SkolemPolicy::PerTrigger => EngineKind::Oblivious,
            SkolemPolicy::PerFrontier => EngineKind::SemiOblivious,
        };
        if let Some(outcome) = gov.interrupted(0) {
            emit(obs, || Event::RunInterrupted {
                engine: engine_kind,
                step: 0,
                // Total: `interrupted` only returns interrupt outcomes.
                reason: outcome
                    .interrupt_reason()
                    .unwrap_or(chase_telemetry::InterruptReason::Deadline),
            });
            return ObliviousRun {
                outcome,
                instance: database.clone(),
                steps: 0,
            };
        }
        let vars = self.fp_vars();
        let mut instance = database.clone();
        // Body joins only: the oblivious chase never runs restriction
        // checks, so head-satisfaction keys would be dead weight.
        let index_guard = span_enter(obs, spans::INDEX_MAINTAIN, NO_TGD);
        for &(pred, a, b) in self.set.body_pair_plans() {
            instance.register_pair_index(pred, a as usize, b as usize);
        }
        index_guard.exit(obs);
        let mut skolem = SkolemTable::above(
            self.policy,
            instance.iter().flat_map(|a| a.args.iter().copied()),
        );
        let mut queue: VecDeque<Trigger> = VecDeque::new();
        let mut applied: chase_core::ids::FxHashSet<TriggerFp> = fx_set();
        let mut enum_scratch = HomScratch::new();
        // Single-worker pools skip the batch path entirely — it could
        // only add per-trigger clones and a merge on the calling thread
        // (see the restricted engine for the same reasoning).
        let fan_out = pool.target_workers() > 1;

        let mut batch_idx: u32 = 0;
        let seed_guard = span_enter(obs, spans::SEED, NO_TGD);
        if fan_out && self.go_parallel(instance.len()) {
            let batch = collect_batch(
                self.set,
                &instance,
                None,
                vars,
                false,
                BatchControl {
                    cancel: Some(gov.cancel_token()),
                    inject_panic_worker: gov.faults().panic_worker_in(batch_idx),
                    worker_cap: self.workers,
                },
                &mut *pool,
            );
            batch_idx += 1;
            emit_worker_spans(obs, &batch.worker_nanos);
            if batch.panicked_workers > 0 {
                emit(obs, || Event::WorkerPanicked {
                    engine: engine_kind,
                    step: 0,
                    panics: batch.panicked_workers,
                });
            }
            for d in batch.discovered {
                if applied.insert(d.fp) {
                    emit_detail(obs, || Event::TriggerDiscovered {
                        engine: engine_kind,
                        tgd: d.trigger.tgd.0,
                        step: 0,
                    });
                    queue.push_back(d.trigger);
                }
            }
        } else {
            let _ = for_each_trigger_with(&mut enum_scratch, self.set, &instance, &mut |id, b| {
                let fp = TriggerFp::of(id, b, vars.of(self.set.tgd(id)));
                if applied.insert(fp) {
                    emit_detail(obs, || Event::TriggerDiscovered {
                        engine: engine_kind,
                        tgd: id.0,
                        step: 0,
                    });
                    queue.push_back(Trigger {
                        tgd: id,
                        binding: b.clone(),
                    });
                }
                ControlFlow::Continue(())
            });
        }
        seed_guard.exit(obs);
        emit_detail(obs, || Event::QueueDepth {
            engine: engine_kind,
            step: 0,
            depth: queue.len() as u64,
        });

        let mut steps = 0usize;
        let mut new_slots: Vec<usize> = Vec::new();
        loop {
            if let Some(outcome) = gov.interrupted(steps) {
                emit(obs, || Event::RunInterrupted {
                    engine: engine_kind,
                    step: steps as u64,
                    // Total: `interrupted` only returns interrupt outcomes.
                    reason: outcome
                        .interrupt_reason()
                        .unwrap_or(chase_telemetry::InterruptReason::Deadline),
                });
                if let Some(start) = run_start {
                    emit_profile_sample(
                        obs,
                        engine_kind,
                        start,
                        &instance,
                        steps as u64,
                        queue.len() as u64,
                    );
                }
                return ObliviousRun {
                    outcome,
                    instance,
                    steps,
                };
            }
            let Some(trigger) = queue.pop_front() else {
                break;
            };
            if gov.budget_exhausted(steps, instance.len()) {
                queue.push_front(trigger);
                if let Some(start) = run_start {
                    emit_profile_sample(
                        obs,
                        engine_kind,
                        start,
                        &instance,
                        steps as u64,
                        queue.len() as u64,
                    );
                }
                return ObliviousRun {
                    outcome: Outcome::BudgetExhausted,
                    instance,
                    steps,
                };
            }
            // 1-in-K sampled spans with shared boundary clock reads
            // keep profiling overhead low (see `crate::profiling`).
            let sampled = (steps as u64).is_multiple_of(self.profile_sample_every);
            let step_guard = span_enter_sampled(obs, spans::STEP, trigger.tgd.0, sampled, None);
            let tgd = self.set.tgd(trigger.tgd);
            let insert_guard = span_enter_sampled(
                obs,
                spans::INSERT,
                trigger.tgd.0,
                sampled,
                step_guard.start(),
            );
            let nulls_before = skolem.invented();
            let added = trigger.result(tgd, &mut skolem);
            let nulls_after = skolem.invented();
            steps += 1;
            new_slots.clear();
            let mut fresh_atoms = 0u32;
            for atom in added {
                let pred = atom.pred.0;
                let (slot, fresh) = instance.insert(atom);
                emit_detail(obs, || Event::AtomInserted {
                    engine: engine_kind,
                    predicate: pred,
                    step: steps as u64,
                    fresh,
                });
                if fresh {
                    fresh_atoms += 1;
                    new_slots.push(slot);
                }
            }
            let insert_end = insert_guard.exit_now(obs);
            for null in nulls_before..nulls_after {
                emit_detail(obs, || Event::NullInvented {
                    engine: engine_kind,
                    null,
                    step: steps as u64,
                });
            }
            emit(obs, || Event::TriggerApplied {
                engine: engine_kind,
                tgd: trigger.tgd.0,
                step: steps as u64,
                new_atoms: fresh_atoms,
                new_nulls: nulls_after - nulls_before,
            });
            let match_guard =
                span_enter_sampled(obs, spans::MATCH, trigger.tgd.0, sampled, insert_end);
            if fan_out && !new_slots.is_empty() && self.go_parallel(new_slots.len()) {
                let batch = collect_batch(
                    self.set,
                    &instance,
                    Some(&new_slots),
                    vars,
                    false,
                    BatchControl {
                        cancel: Some(gov.cancel_token()),
                        inject_panic_worker: gov.faults().panic_worker_in(batch_idx),
                        worker_cap: self.workers,
                    },
                    &mut *pool,
                );
                batch_idx += 1;
                emit_worker_spans(obs, &batch.worker_nanos);
                if batch.panicked_workers > 0 {
                    emit(obs, || Event::WorkerPanicked {
                        engine: engine_kind,
                        step: steps as u64,
                        panics: batch.panicked_workers,
                    });
                }
                for d in batch.discovered {
                    if applied.insert(d.fp) {
                        emit_detail(obs, || Event::TriggerDiscovered {
                            engine: engine_kind,
                            tgd: d.trigger.tgd.0,
                            step: steps as u64,
                        });
                        queue.push_back(d.trigger);
                    }
                }
            } else {
                for &slot in &new_slots {
                    let _ = for_each_trigger_using_with(
                        &mut enum_scratch,
                        self.set,
                        &instance,
                        slot,
                        &mut |id, b| {
                            let fp = TriggerFp::of(id, b, vars.of(self.set.tgd(id)));
                            if applied.insert(fp) {
                                emit_detail(obs, || Event::TriggerDiscovered {
                                    engine: engine_kind,
                                    tgd: id.0,
                                    step: steps as u64,
                                });
                                queue.push_back(Trigger {
                                    tgd: id,
                                    binding: b.clone(),
                                });
                            }
                            ControlFlow::Continue(())
                        },
                    );
                }
            }
            let match_end = match_guard.exit_now(obs);
            emit_detail(obs, || Event::QueueDepth {
                engine: engine_kind,
                step: steps as u64,
                depth: queue.len() as u64,
            });
            step_guard.exit_at(obs, match_end);
            if let Some(start) = run_start {
                if (steps as u64).is_multiple_of(self.heartbeat_every) {
                    emit_profile_sample(
                        obs,
                        engine_kind,
                        start,
                        &instance,
                        steps as u64,
                        queue.len() as u64,
                    );
                }
            }
        }
        if let Some(start) = run_start {
            emit_profile_sample(obs, engine_kind, start, &instance, steps as u64, 0);
        }
        ObliviousRun {
            outcome: Outcome::Terminated,
            instance,
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::hom::satisfies_all;
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    fn run_oblivious(src: &str, budget: Budget, semi: bool) -> (ObliviousRun, TgdSet) {
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let engine = if semi {
            ObliviousChase::new(&set).semi_oblivious()
        } else {
            ObliviousChase::new(&set)
        };
        (engine.run(&p.database, budget), set)
    }

    #[test]
    fn intro_example_diverges_obliviously() {
        // The restricted chase performs 0 steps here; the oblivious
        // chase builds R(a,ν0), R(a,ν1), ... without bound (§1).
        let (run, _) = run_oblivious(
            "R(a,b). R(x,y) -> exists z. R(x,z).",
            Budget::steps(50),
            false,
        );
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        assert_eq!(run.instance.len(), 51);
    }

    #[test]
    fn full_tgds_reach_fixpoint() {
        let (run, set) = run_oblivious(
            "E(a,b). E(b,c). E(x,y), E(y,z) -> E(x,z).",
            Budget::steps(1000),
            false,
        );
        assert_eq!(run.outcome, Outcome::Terminated);
        assert!(satisfies_all(&run.instance, &set));
        // transitive closure of a 2-path: E(a,b), E(b,c), E(a,c)
        assert_eq!(run.instance.len(), 3);
    }

    #[test]
    fn oblivious_result_is_a_model_when_terminating() {
        let (run, set) = run_oblivious(
            "R(a,b). R(x,y) -> exists z. S(y,z). S(u,v) -> T(u).",
            Budget::steps(1000),
            false,
        );
        assert_eq!(run.outcome, Outcome::Terminated);
        assert!(satisfies_all(&run.instance, &set));
    }

    #[test]
    fn semi_oblivious_is_coarser() {
        // σ: R(x,y) -> exists z. S(x,z). Two triggers share frontier x=a:
        // the oblivious chase invents two nulls, the semi-oblivious one.
        let src = "R(a,b). R(a,c). R(x,y) -> exists z. S(x,z).";
        let (full, _) = run_oblivious(src, Budget::steps(100), false);
        let (semi, _) = run_oblivious(src, Budget::steps(100), true);
        assert_eq!(full.outcome, Outcome::Terminated);
        assert_eq!(semi.outcome, Outcome::Terminated);
        assert_eq!(full.instance.len(), 4); // 2 db + 2 S-atoms
        assert_eq!(semi.instance.len(), 3); // 2 db + 1 S-atom
    }

    #[test]
    fn oblivious_chase_is_deterministic() {
        // The oblivious chase result I_{D,T} is unique (Section 3.1):
        // two runs must produce identical instances, nulls included,
        // because null names are determined by the trigger (Def 3.1).
        let src = "
            R(a,b). R(b,c).
            R(x,y) -> exists z. S(y,z).
            S(u,v) -> exists w. R(v,w).
        ";
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let a = ObliviousChase::new(&set).run(&p.database, Budget::steps(200));
        let b = ObliviousChase::new(&set).run(&p.database, Budget::steps(200));
        assert_eq!(a.instance, b.instance);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn oblivious_contains_restricted_result() {
        use crate::restricted::{RestrictedChase, Strategy};
        let src = "
            R(a,b).
            R(x,y) -> exists z. S(y,z).
            S(x,y) -> T(x).
        ";
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let r = RestrictedChase::new(&set)
            .strategy(Strategy::Fifo)
            .run(&p.database, Budget::steps(1000));
        let o = ObliviousChase::new(&set).run(&p.database, Budget::steps(1000));
        // The restricted result maps homomorphically into the oblivious
        // chase (both are universal models here), and is no larger.
        assert!(r.instance.len() <= o.instance.len());
        assert!(chase_core::hom::ground_homomorphism_exists(
            &r.instance,
            &o.instance
        ));
    }

    #[test]
    fn parallel_oblivious_is_bit_identical() {
        let src = "
            R(a,b). R(b,c).
            R(x,y) -> exists z. S(y,z).
            S(u,v) -> exists w. R(v,w).
        ";
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        for semi in [false, true] {
            let base = ObliviousChase::new(&set);
            let base = if semi { base.semi_oblivious() } else { base };
            let seq = base.clone().run(&p.database, Budget::steps(120));
            let par = base
                .parallelism(Parallelism::On)
                .parallel_threshold(0)
                .run(&p.database, Budget::steps(120));
            assert_eq!(seq.outcome, par.outcome, "semi={semi}");
            assert_eq!(seq.steps, par.steps, "semi={semi}");
            assert_eq!(seq.instance, par.instance, "semi={semi}");
        }
    }
}
