//! Chase derivations: recorded step sequences, replay and validation.
//!
//! A (finite prefix of a) restricted chase derivation `(I_i)` is
//! represented by its start database plus the sequence of trigger
//! applications. [`Derivation::validate`] replays the sequence and
//! checks the defining conditions of Section 3.2: every step's trigger
//! is a trigger on the current instance *and is active*; a derivation
//! claimed to be terminating must leave no active trigger.

use chase_core::atom::Atom;
use chase_core::hom::exists_homomorphism;
use chase_core::instance::Instance;
use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;

use crate::skolem::SkolemTable;
use crate::trigger::Trigger;

/// One chase step: the trigger applied and the atoms it added.
#[derive(Debug, Clone)]
pub struct Step {
    /// The applied trigger.
    pub trigger: Trigger,
    /// The atoms `result(σ,h)` (singleton for single-head TGDs).
    pub added: Vec<Atom>,
}

/// A recorded derivation prefix.
#[derive(Debug, Clone, Default)]
pub struct Derivation {
    /// The steps, in application order.
    pub steps: Vec<Step>,
}

/// Why a derivation failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivationFault {
    /// The trigger at this step index is not a homomorphism of its
    /// TGD body into the instance at that point.
    NotATrigger(usize),
    /// The trigger at this step index is not active (the restricted
    /// chase may only apply active triggers).
    NotActive(usize),
    /// The step claims to add atoms different from `result(σ,h)`.
    WrongResult(usize),
    /// The derivation is marked terminated but an active trigger
    /// remains on the final instance.
    NotSaturated,
}

impl std::fmt::Display for DerivationFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerivationFault::NotATrigger(i) => write!(f, "step {i}: not a trigger"),
            DerivationFault::NotActive(i) => write!(f, "step {i}: trigger not active"),
            DerivationFault::WrongResult(i) => {
                write!(f, "step {i}: added atoms differ from result(σ,h)")
            }
            DerivationFault::NotSaturated => {
                write!(f, "final instance still has an active trigger")
            }
        }
    }
}

impl Derivation {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the derivation has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Replays the derivation from `database`, checking that each step
    /// applies an *active* trigger whose result matches the recorded
    /// atoms. If `must_saturate` is set, additionally checks that no
    /// active trigger remains at the end.
    ///
    /// Returns the final instance on success.
    pub fn validate(
        &self,
        database: &Instance,
        set: &TgdSet,
        must_saturate: bool,
    ) -> Result<Instance, DerivationFault> {
        let mut instance = database.clone();
        for (i, step) in self.steps.iter().enumerate() {
            let tgd = set.tgd(step.trigger.tgd);
            // (a) it is a trigger: h maps every body atom into I.
            let grounded_body: Vec<Atom> = tgd
                .body()
                .iter()
                .map(|a| step.trigger.binding.apply_atom(a))
                .collect();
            if !grounded_body
                .iter()
                .all(|a| a.is_ground() && instance.contains(a))
            {
                return Err(DerivationFault::NotATrigger(i));
            }
            // (b) it is active.
            if !step.trigger.is_active(tgd, &instance) {
                return Err(DerivationFault::NotActive(i));
            }
            // (c) the added atoms are result(σ,h) up to null renaming:
            // frontier positions must carry the frontier images and
            // existential positions must carry nulls consistent with
            // the head's variable repetition pattern.
            if !added_atoms_consistent(&step.added, tgd, &step.trigger) {
                return Err(DerivationFault::WrongResult(i));
            }
            for atom in &step.added {
                instance.insert(atom.clone());
            }
        }
        if must_saturate {
            let saturated = crate::trigger::active_triggers(set, &instance).is_empty();
            if !saturated {
                return Err(DerivationFault::NotSaturated);
            }
        }
        Ok(instance)
    }

    /// Renders the derivation for diagnostics.
    pub fn display(&self, _set: &TgdSet, vocab: &Vocabulary) -> String {
        let mut out = String::new();
        for (i, step) in self.steps.iter().enumerate() {
            let added: Vec<String> = step.added.iter().map(|a| a.display(vocab)).collect();
            out.push_str(&format!(
                "{i:4}: σ{} ⇒ {}\n",
                step.trigger.tgd.0,
                added.join(", ")
            ));
        }
        out
    }
}

/// Checks that `added` instantiates the head pattern of `tgd` under
/// the trigger's binding: frontier variables carry their images and
/// existential variables carry nulls, equal nulls exactly where the
/// head repeats a variable.
fn added_atoms_consistent(added: &[Atom], tgd: &chase_core::tgd::Tgd, trigger: &Trigger) -> bool {
    if added.len() != tgd.head().len() {
        return false;
    }
    let mut witness: Vec<(chase_core::ids::VarId, chase_core::term::Term)> = Vec::new();
    for (head, atom) in tgd.head().iter().zip(added.iter()) {
        if head.pred != atom.pred {
            return false;
        }
        for (ht, &at) in head.args.iter().zip(atom.args.iter()) {
            match *ht {
                chase_core::term::Term::Var(v) => {
                    if let Some(image) = trigger.binding.get(v) {
                        if image != at {
                            return false;
                        }
                    } else {
                        // Existential: must be a null, consistently.
                        if !at.is_null() {
                            return false;
                        }
                        match witness.iter().find(|(w, _)| *w == v) {
                            Some(&(_, t)) => {
                                if t != at {
                                    return false;
                                }
                            }
                            None => witness.push((v, at)),
                        }
                    }
                }
                _ => return false, // heads are constant-free
            }
        }
    }
    true
}

/// Checks whether the instance satisfies every TGD (`I |= T`), i.e.
/// the chase has reached a model. Exposed here for symmetry with
/// validation.
pub fn is_model(instance: &Instance, set: &TgdSet) -> bool {
    set.tgds().iter().all(|tgd| {
        let mut ok = true;
        let mut binding = chase_core::subst::Binding::new();
        let _ =
            chase_core::hom::for_each_homomorphism(tgd.body(), instance, &mut binding, &mut |h| {
                let r = h.restricted_to(tgd.frontier());
                if exists_homomorphism(tgd.head(), instance, &r) {
                    std::ops::ControlFlow::Continue(())
                } else {
                    ok = false;
                    std::ops::ControlFlow::Break(())
                }
            });
        ok
    })
}

/// Re-derives the result atoms for a trigger (convenience for tests
/// that construct derivations manually).
pub fn apply_trigger(
    trigger: &Trigger,
    set: &TgdSet,
    skolem: &mut SkolemTable,
    instance: &mut Instance,
) -> Vec<Atom> {
    let atoms = trigger.result(set.tgd(trigger.tgd), skolem);
    for a in &atoms {
        instance.insert(a.clone());
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skolem::SkolemPolicy;
    use crate::trigger::active_triggers;
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    #[test]
    fn manual_derivation_validates() {
        let mut vocab = Vocabulary::new();
        let p = parse_program("R(a,b). R(x,y) -> S(y).", &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let mut inst = p.database.clone();
        let mut skolem = SkolemTable::new(SkolemPolicy::PerTrigger);
        let t = active_triggers(&set, &inst).pop().unwrap();
        let added = apply_trigger(&t, &set, &mut skolem, &mut inst);
        let derivation = Derivation {
            steps: vec![Step { trigger: t, added }],
        };
        let final_inst = derivation.validate(&p.database, &set, true).unwrap();
        assert_eq!(final_inst.len(), 2);
        assert!(is_model(&final_inst, &set));
    }

    #[test]
    fn non_active_step_rejected() {
        let mut vocab = Vocabulary::new();
        // The TGD is already satisfied: its only trigger is non-active.
        let p = parse_program("R(a,b). S(b). R(x,y) -> S(y).", &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let mut all = crate::trigger::all_triggers(&set, &p.database);
        let t = all.pop().unwrap();
        let mut skolem = SkolemTable::new(SkolemPolicy::PerTrigger);
        let added = t.result(set.tgd(t.tgd), &mut skolem);
        let d = Derivation {
            steps: vec![Step { trigger: t, added }],
        };
        assert_eq!(
            d.validate(&p.database, &set, false),
            Err(DerivationFault::NotActive(0))
        );
    }

    #[test]
    fn unsaturated_termination_claim_rejected() {
        let mut vocab = Vocabulary::new();
        let p = parse_program("R(a,b). R(x,y) -> S(y).", &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let d = Derivation::default();
        assert_eq!(
            d.validate(&p.database, &set, true),
            Err(DerivationFault::NotSaturated)
        );
        assert!(d.validate(&p.database, &set, false).is_ok());
    }

    #[test]
    fn wrong_result_rejected() {
        let mut vocab = Vocabulary::new();
        let p = parse_program("R(a,b). R(x,y) -> exists z. S(y,z).", &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let t = active_triggers(&set, &p.database).pop().unwrap();
        // Claim the step added S(y, b) — a constant instead of a null.
        let s = vocab.lookup_pred("S").unwrap();
        let b = vocab.constant("b");
        let d = Derivation {
            steps: vec![Step {
                trigger: t,
                added: vec![Atom::new(
                    s,
                    vec![
                        chase_core::term::Term::Const(b),
                        chase_core::term::Term::Const(b),
                    ],
                )],
            }],
        };
        assert_eq!(
            d.validate(&p.database, &set, false),
            Err(DerivationFault::WrongResult(0))
        );
    }
}
