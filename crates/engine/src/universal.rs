//! Cores of instances: the minimal universal models underneath chase
//! results.
//!
//! The restricted chase builds smaller instances than the oblivious
//! chase (the paper's §1 selling point), but neither is minimal in
//! general. The *core* of an instance `I` is a ⊆-minimal retract — a
//! sub-instance `C ⊆ I` with a homomorphism `I → C` that is the
//! identity on `C`. Cores of universal models are the canonical
//! minimal universal models; computing them here lets experiment E9
//! quantify how far each chase variant is from minimal.

use std::ops::ControlFlow;

use chase_core::atom::Atom;
use chase_core::hom::for_each_homomorphism;
use chase_core::ids::{fx_map, FxHashMap, NullId, VarId};
use chase_core::instance::Instance;
use chase_core::subst::Binding;
use chase_core::term::Term;

/// Searches for an endomorphism `I → I` (constants fixed, every null
/// free to move) that eliminates the null `prey`, i.e. maps it to a
/// different term; returns the folded instance if one exists.
///
/// Iterating this per null reaches the core: an instance that is not a
/// core admits an idempotent proper retraction, which necessarily
/// moves (hence eliminates) at least one null.
fn retract_away(instance: &Instance, prey: NullId) -> Option<Instance> {
    // Replace every null by a dedicated variable.
    let mut var_of: FxHashMap<NullId, VarId> = fx_map();
    let mut next = 0u32;
    let patterns: Vec<Atom> = instance
        .iter()
        .map(|a| {
            Atom::new(
                a.pred,
                a.args
                    .iter()
                    .map(|&t| match t {
                        Term::Null(n) => {
                            let v = *var_of.entry(n).or_insert_with(|| {
                                let v = VarId(u32::MAX - next);
                                next += 1;
                                v
                            });
                            Term::Var(v)
                        }
                        ground => ground,
                    })
                    .collect::<chase_core::atom::ArgVec>(),
            )
        })
        .collect();
    let prey_var = *var_of.get(&prey)?;
    let mut result = None;
    let mut binding = Binding::new();
    let _ = for_each_homomorphism(&patterns, instance, &mut binding, &mut |h| {
        if h.get(prey_var) == Some(Term::Null(prey)) {
            return ControlFlow::Continue(()); // prey not eliminated; keep searching
        }
        let folded: Vec<Atom> = patterns.iter().map(|p| h.apply_atom(p)).collect();
        // Guard against permutations: some *other* null could have
        // been mapped onto `prey`, leaving the null count unchanged
        // and the loop non-terminating. Accept only genuine shrinkage.
        let prey_survives = folded.iter().any(|a| a.args.contains(&Term::Null(prey)));
        if prey_survives {
            return ControlFlow::Continue(());
        }
        result = Some(Instance::from_atoms(folded));
        ControlFlow::Break(())
    });
    result
}

/// Computes the core of `instance` by repeatedly retracting away
/// single nulls until no null can be eliminated. Exponential-ish in
/// the worst case (core computation is intractable in general); meant
/// for the modest instances chase experiments produce.
pub fn core_of(instance: &Instance) -> Instance {
    let mut current = instance.clone();
    loop {
        let nulls: Vec<NullId> = {
            let mut seen = fx_map();
            let mut out = Vec::new();
            for atom in current.iter() {
                for &t in atom.args {
                    if let Term::Null(n) = t {
                        if seen.insert(n, ()).is_none() {
                            out.push(n);
                        }
                    }
                }
            }
            let _: &FxHashMap<NullId, ()> = &seen;
            out
        };
        let mut changed = false;
        for prey in nulls {
            if let Some(smaller) = retract_away(&current, prey) {
                current = smaller;
                changed = true;
                break; // null set changed; recompute
            }
        }
        if !changed {
            return current;
        }
    }
}

/// Whether `instance` is its own core (no null can be retracted away).
pub fn is_core(instance: &Instance) -> bool {
    core_of(instance).len() == instance.len()
        && core_of(instance)
            .iter()
            .all(|a| instance.contains(&a.to_atom()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oblivious::ObliviousChase;
    use crate::restricted::{Budget, Outcome, RestrictedChase, Strategy};
    use chase_core::hom::ground_homomorphism_exists;
    use chase_core::ids::{ConstId, PredId};
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    fn c(i: u32) -> Term {
        Term::Const(ConstId(i))
    }

    fn n(i: u32) -> Term {
        Term::Null(NullId(i))
    }

    fn atom(p: u32, args: &[Term]) -> Atom {
        Atom::new(PredId(p), args.to_vec())
    }

    #[test]
    fn redundant_null_folds_onto_constant() {
        // {R(a,b), R(a,ν0)}: ν0 folds onto b.
        let inst = Instance::from_atoms([atom(0, &[c(0), c(1)]), atom(0, &[c(0), n(0)])]);
        let core = core_of(&inst);
        assert_eq!(core.len(), 1);
        assert!(core.contains(&atom(0, &[c(0), c(1)])));
    }

    #[test]
    fn necessary_null_survives() {
        // {R(a,ν0)} with no constant alternative: the null stays.
        let inst = Instance::from_atoms([atom(0, &[c(0), n(0)])]);
        let core = core_of(&inst);
        assert_eq!(core.len(), 1);
        assert!(is_core(&inst));
    }

    #[test]
    fn null_chain_collapses() {
        // {E(a,ν0), E(ν0,ν1), E(a,a)}: everything folds onto E(a,a).
        let inst = Instance::from_atoms([
            atom(0, &[c(0), n(0)]),
            atom(0, &[n(0), n(1)]),
            atom(0, &[c(0), c(0)]),
        ]);
        let core = core_of(&inst);
        assert_eq!(core.len(), 1);
        assert!(core.contains(&atom(0, &[c(0), c(0)])));
    }

    #[test]
    fn oblivious_result_cores_down_to_restricted_size() {
        // Emp workload: the oblivious chase invents one manager per
        // employee, the restricted chase one per department; the core
        // of the oblivious result is exactly as small as the
        // restricted result.
        let mut vocab = Vocabulary::new();
        let p = parse_program(
            "Emp(p1,d). Emp(p2,d). Emp(p3,d).
             Emp(e,d) -> exists m. Mgr(d,m).",
            &mut vocab,
        )
        .unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        let restricted = RestrictedChase::new(&set)
            .strategy(Strategy::Fifo)
            .run(&p.database, Budget::steps(1_000));
        let oblivious = ObliviousChase::new(&set).run(&p.database, Budget::steps(1_000));
        assert_eq!(restricted.outcome, Outcome::Terminated);
        assert_eq!(oblivious.outcome, Outcome::Terminated);
        assert_eq!(restricted.instance.len(), 4); // 3 Emp + 1 Mgr
        assert_eq!(oblivious.instance.len(), 6); // 3 Emp + 3 Mgr
        let core = core_of(&oblivious.instance);
        assert_eq!(core.len(), restricted.instance.len());
        // The core and the restricted result are homomorphically
        // equivalent universal models.
        assert!(ground_homomorphism_exists(&core, &restricted.instance));
        assert!(ground_homomorphism_exists(&restricted.instance, &core));
    }

    #[test]
    fn core_is_idempotent() {
        let inst = Instance::from_atoms([
            atom(0, &[c(0), n(0)]),
            atom(0, &[c(0), n(1)]),
            atom(1, &[n(1)]),
        ]);
        let once = core_of(&inst);
        let twice = core_of(&once);
        assert_eq!(once, twice);
        assert!(is_core(&once));
    }
}
