//! An executable rendition of the Fairness Theorem machinery
//! (Section 4, Lemmas 4.3–4.5).
//!
//! The paper turns an infinite *unfair* restricted chase derivation
//! into a fair one by repeatedly splicing in the earliest persistently
//! active trigger at a carefully chosen index `ℓ` (greater than the
//! round number, the trigger's discovery index `m`, and every index of
//! the set `A = {i : result(σ,h) ≺s result(σᵢ,hᵢ)}`), then taking the
//! diagonal. On a finite horizon (a derivation prefix) the same
//! transformation is executable verbatim; [`repair`] performs `k`
//! rounds of it and checks Lemma 4.5 — each spliced derivation must
//! again be a valid restricted chase derivation.
//!
//! For single-head TGDs the splice always validates (that is the
//! theorem). For multi-head TGDs it can fail — Example B.1 — and
//! [`repair`] reports exactly that via [`RepairOutcome::SpliceInvalid`].

use chase_core::atom::Atom;
use chase_core::instance::Instance;
use chase_core::term::Term;
use chase_core::tgd::{Tgd, TgdSet};

use crate::derivation::{Derivation, Step};
use crate::relations::stops;
use crate::skolem::{SkolemPolicy, SkolemTable};
use crate::trigger::{all_triggers, Trigger};

/// A trigger that is active from instance `I_m` to the end of the
/// recorded prefix and is never applied in it — the finite-horizon
/// stand-in for the paper's "remains active forever".
#[derive(Debug, Clone)]
pub struct PersistentTrigger {
    /// Smallest index `m` such that the trigger exists (and is active)
    /// on `I_m`.
    pub first_active: usize,
    /// The trigger itself.
    pub trigger: Trigger,
}

/// The positions of frontier variables in the `k`-th head atom of a
/// TGD (generalises [`Trigger::frontier_positions`] to multi-head).
fn frontier_positions_of_head(tgd: &Tgd, k: usize) -> Vec<usize> {
    tgd.head()[k]
        .args
        .iter()
        .enumerate()
        .filter(|(_, t)| matches!(t, Term::Var(v) if tgd.is_frontier(*v)))
        .map(|(i, _)| i)
        .collect()
}

/// Replays the derivation and returns the instances `I_0, ..., I_N`.
fn instances_along(database: &Instance, derivation: &Derivation) -> Vec<Instance> {
    let mut out = Vec::with_capacity(derivation.len() + 1);
    let mut current = database.clone();
    out.push(current.clone());
    for step in &derivation.steps {
        for atom in &step.added {
            current.insert(atom.clone());
        }
        out.push(current.clone());
    }
    out
}

/// Finds every persistently active trigger of the prefix, sorted by
/// `first_active`. Because activeness is anti-monotone along a
/// derivation, a trigger on `I_m` that is still active on the final
/// instance is active on every instance in between.
pub fn persistently_active(
    database: &Instance,
    set: &TgdSet,
    derivation: &Derivation,
) -> Vec<PersistentTrigger> {
    let instances = instances_along(database, derivation);
    let last = instances.last().expect("at least the database");
    let applied: Vec<_> = derivation
        .steps
        .iter()
        .map(|s| s.trigger.key(set.tgd(s.trigger.tgd)))
        .collect();
    let mut out = Vec::new();
    for trigger in all_triggers(set, last) {
        let tgd = set.tgd(trigger.tgd);
        if !trigger.is_active(tgd, last) {
            continue;
        }
        if applied.contains(&trigger.key(tgd)) {
            continue;
        }
        // Earliest instance on which the grounded body is present.
        let grounded: Vec<Atom> = tgd
            .body()
            .iter()
            .map(|a| trigger.binding.apply_atom(a))
            .collect();
        let m = instances
            .iter()
            .position(|inst| grounded.iter().all(|a| inst.contains(a)))
            .expect("body present on the final instance");
        out.push(PersistentTrigger {
            first_active: m,
            trigger,
        });
    }
    out.sort_by_key(|p| p.first_active);
    out
}

/// The *unfairness age* of a prefix: the largest number of steps any
/// never-applied trigger has been active, i.e.
/// `max (len − first_active)` over persistent triggers (0 if none).
///
/// Along an infinite derivation there are always pending active
/// triggers at any horizon (the next step's, for one), so "no pending
/// triggers" is the wrong finite-horizon notion of fairness. What
/// distinguishes a fair derivation is that this age stays bounded by
/// the queue latency: FIFO keeps it O(queue length), while an unfair
/// strategy lets it grow linearly with the horizon.
pub fn unfairness_age(database: &Instance, set: &TgdSet, derivation: &Derivation) -> usize {
    persistently_active(database, set, derivation)
        .first()
        .map(|p| derivation.len() - p.first_active)
        .unwrap_or(0)
}

/// Whether the prefix is fair within its horizon: no never-applied
/// trigger has been active since an instance older than `cutoff`.
pub fn is_fair_within_horizon(
    database: &Instance,
    set: &TgdSet,
    derivation: &Derivation,
    cutoff: usize,
) -> bool {
    persistently_active(database, set, derivation)
        .first()
        .map(|p| p.first_active > cutoff)
        .unwrap_or(true)
}

/// The set `A = {i : result(σ,h) ≺s result(σᵢ,hᵢ)}` of Lemma 4.4 for a
/// candidate trigger result against a derivation prefix: the step
/// indices whose produced atoms are stopped by `result`.
///
/// Lemma 4.4 proves `A` is finite for single-head TGDs; Example B.1
/// shows it can grow without bound for multi-head TGDs (every spliced
/// copy of `R(z,z,z)` stops every later `R(·,y,y)` atom) — which is
/// precisely where the Fairness Theorem breaks. Experiment E2 measures
/// this growth.
pub fn stopped_indices(set: &TgdSet, derivation: &Derivation, result: &[Atom]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, step) in derivation.steps.iter().enumerate() {
        let step_tgd = set.tgd(step.trigger.tgd);
        for (k, added) in step.added.iter().enumerate() {
            let fpos = frontier_positions_of_head(step_tgd, k);
            if result.iter().any(|r| stops(r, added, &fpos)) {
                out.push(i);
                break;
            }
        }
    }
    out
}

/// Splices `result(σ,h)` of `trigger` into the derivation after index
/// `ell`, returning the spliced sequence (not yet validated). This is
/// the raw transformation of Section 4; [`repair`] chooses `ell` per
/// the paper, while tests use this directly to exhibit how a *bad*
/// choice of `ell` (one not exceeding every element of `A`) breaks the
/// derivation.
pub fn splice_at(
    database: &Instance,
    set: &TgdSet,
    derivation: &Derivation,
    trigger: &Trigger,
    ell: usize,
) -> Derivation {
    let tgd = set.tgd(trigger.tgd);
    let mut all_terms: Vec<Term> = database
        .iter()
        .flat_map(|a| a.args.iter().copied())
        .collect();
    for s in &derivation.steps {
        for a in &s.added {
            all_terms.extend(a.args.iter().copied());
        }
    }
    let mut skolem = SkolemTable::above(SkolemPolicy::PerTrigger, all_terms);
    let result = trigger.result(tgd, &mut skolem);
    let ell = ell.min(derivation.len());
    let mut steps = Vec::with_capacity(derivation.len() + 1);
    steps.extend(derivation.steps[..ell].iter().cloned());
    steps.push(Step {
        trigger: trigger.clone(),
        added: result,
    });
    steps.extend(derivation.steps[ell..].iter().cloned());
    Derivation { steps }
}

/// The result of [`repair`].
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// The derivation was already fair within the horizon (possibly
    /// after some rounds); contains the final derivation and the
    /// number of splice rounds performed.
    Fair(Derivation, usize),
    /// `rounds` splices were performed and persistent triggers may
    /// remain; contains the repaired derivation (still valid).
    Partial(Derivation, usize),
    /// A splice produced an invalid derivation — impossible for
    /// single-head TGDs by Lemma 4.5, possible for multi-head TGDs
    /// (Example B.1). Contains the round and the validation fault.
    SpliceInvalid {
        /// Which round failed.
        round: usize,
        /// Why the spliced sequence is not a restricted derivation.
        fault: crate::derivation::DerivationFault,
        /// The invalid spliced derivation, for inspection.
        spliced: Derivation,
    },
}

/// One splice of the Section 4 construction: deactivate the earliest
/// persistent trigger by inserting its result after index `ℓ`.
///
/// Returns `None` if the prefix is already fair within the horizon.
fn splice_once(
    database: &Instance,
    set: &TgdSet,
    derivation: &Derivation,
    round: usize,
    cutoff: usize,
) -> Option<Derivation> {
    let persistent = persistently_active(database, set, derivation);
    let target = persistent.first().filter(|p| p.first_active <= cutoff)?;
    let tgd = set.tgd(target.trigger.tgd);
    // Compute A (Lemma 4.4) using a preview of result(σ,h) with
    // non-colliding nulls; splice_at recomputes the same atoms because
    // the skolem naming is deterministic in the trigger.
    let mut all_terms: Vec<Term> = database
        .iter()
        .flat_map(|a| a.args.iter().copied())
        .collect();
    for s in &derivation.steps {
        for a in &s.added {
            all_terms.extend(a.args.iter().copied());
        }
    }
    let mut skolem = SkolemTable::above(SkolemPolicy::PerTrigger, all_terms);
    let result = target.trigger.result(tgd, &mut skolem);
    let a_max = stopped_indices(set, derivation, &result)
        .last()
        .map(|&i| i + 1)
        .unwrap_or(0);
    let ell = [round, target.first_active, a_max]
        .into_iter()
        .max()
        .unwrap_or(0)
        .saturating_add(1);
    Some(splice_at(database, set, derivation, &target.trigger, ell))
}

/// Performs up to `rounds` splice rounds of the Fairness-Theorem
/// construction, validating each spliced derivation (Lemma 4.5).
///
/// Repair targets triggers whose `first_active` is at most `cutoff`:
/// along an infinite derivation, freshly discovered triggers are
/// always pending, so the construction — like the paper's diagonal —
/// only ever needs to discharge the triggers of a fixed finite past.
pub fn repair(
    database: &Instance,
    set: &TgdSet,
    derivation: &Derivation,
    rounds: usize,
    cutoff: usize,
) -> RepairOutcome {
    let mut current = derivation.clone();
    for round in 0..rounds {
        match splice_once(database, set, &current, round, cutoff) {
            None => return RepairOutcome::Fair(current, round),
            Some(spliced) => match spliced.validate(database, set, false) {
                Ok(_) => current = spliced,
                Err(fault) => {
                    return RepairOutcome::SpliceInvalid {
                        round,
                        fault,
                        spliced,
                    }
                }
            },
        }
    }
    if is_fair_within_horizon(database, set, &current, cutoff) {
        RepairOutcome::Fair(current, rounds)
    } else {
        RepairOutcome::Partial(current, rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::restricted::{Budget, Outcome, RestrictedChase, Strategy};
    use chase_core::parser::parse_program;
    use chase_core::vocab::Vocabulary;

    fn setup(src: &str) -> (Vocabulary, TgdSet, Instance) {
        let mut vocab = Vocabulary::new();
        let p = parse_program(src, &mut vocab).unwrap();
        let set = p.tgd_set(&vocab).unwrap();
        (vocab, set, p.database)
    }

    /// A single-head set where the PriorityTgd strategy is unfair:
    /// σ0 : R(x,y) -> ∃z R(y,z)   (appliable for ever)
    /// σ1 : R(x,y) -> S(x)        (stays active, never chosen)
    const UNFAIR_SINGLE_HEAD: &str = "
        R(a,b).
        R(x,y) -> exists z. R(y,z).
        R(x,y) -> S(x).
    ";

    #[test]
    fn priority_strategy_is_unfair_here() {
        let (_, set, db) = setup(UNFAIR_SINGLE_HEAD);
        let run = RestrictedChase::new(&set)
            .strategy(Strategy::PriorityTgd)
            .run(&db, Budget::steps(30));
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        let persistent = persistently_active(&db, &set, &run.derivation);
        assert!(!persistent.is_empty());
        assert_eq!(persistent[0].first_active, 0);
        // σ1's trigger on R(a,b) has been active for the whole run.
        assert_eq!(unfairness_age(&db, &set, &run.derivation), 30);
        assert!(!is_fair_within_horizon(&db, &set, &run.derivation, 5));
    }

    #[test]
    fn fifo_keeps_unfairness_age_bounded() {
        let (_, set, db) = setup(UNFAIR_SINGLE_HEAD);
        for horizon in [10usize, 20, 40] {
            let run = RestrictedChase::new(&set)
                .strategy(Strategy::Fifo)
                .run(&db, Budget::steps(horizon));
            // Under FIFO the oldest pending trigger was discovered
            // within the last queue-length steps; the age must not
            // grow linearly with the horizon (contrast with the
            // PriorityTgd test above, where age == horizon).
            let age = unfairness_age(&db, &set, &run.derivation);
            assert!(age * 2 <= horizon + 8, "age {age} at horizon {horizon}");
        }
    }

    #[test]
    fn repair_deactivates_old_triggers_single_head() {
        let (_, set, db) = setup(UNFAIR_SINGLE_HEAD);
        let run = RestrictedChase::new(&set)
            .strategy(Strategy::PriorityTgd)
            .run(&db, Budget::steps(20));
        let cutoff = 5;
        assert!(!is_fair_within_horizon(&db, &set, &run.derivation, cutoff));
        match repair(&db, &set, &run.derivation, 20, cutoff) {
            RepairOutcome::Fair(fixed, rounds) => {
                assert!(rounds > 0);
                assert_eq!(fixed.len(), run.derivation.len() + rounds);
                // Lemma 4.5: still a valid restricted derivation.
                fixed.validate(&db, &set, false).unwrap();
                assert!(is_fair_within_horizon(&db, &set, &fixed, cutoff));
            }
            other => panic!("expected Fair, got {other:?}"),
        }
    }

    /// Example B.1 rules (multi-head, Fairness Theorem fails).
    const EXAMPLE_B1: &str = "
        R(a,b,b).
        R(x,y,y) -> exists z. R(x,z,y), R(z,y,y).
        R(u,v,w) -> R(w,w,w).
    ";

    #[test]
    fn example_b1_lemma_4_4_fails_for_multi_head() {
        // For multi-head TGDs the set A of Lemma 4.4 can grow without
        // bound: R(b,b,b) stops every σ0-produced atom R(·,b,b).
        let (_, set, db) = setup(EXAMPLE_B1);
        let mut sizes = Vec::new();
        for horizon in [5usize, 10, 20] {
            let run = RestrictedChase::new(&set)
                .strategy(Strategy::PriorityTgd)
                .run(&db, Budget::steps(horizon));
            let persistent = persistently_active(&db, &set, &run.derivation);
            let target = &persistent[0];
            let mut skolem = SkolemTable::above(
                SkolemPolicy::PerTrigger,
                run.instance.iter().flat_map(|a| a.args.iter().copied()),
            );
            let result = target
                .trigger
                .result(set.tgd(target.trigger.tgd), &mut skolem);
            sizes.push(stopped_indices(&set, &run.derivation, &result).len());
        }
        assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2], "{sizes:?}");
        // Contrast: for the single-head unfair set, A is empty at any
        // horizon (S-atoms stop nothing).
        let (_, set1, db1) = setup(UNFAIR_SINGLE_HEAD);
        let run1 = RestrictedChase::new(&set1)
            .strategy(Strategy::PriorityTgd)
            .run(&db1, Budget::steps(20));
        let p1 = persistently_active(&db1, &set1, &run1.derivation);
        let mut skolem = SkolemTable::above(
            SkolemPolicy::PerTrigger,
            run1.instance.iter().flat_map(|a| a.args.iter().copied()),
        );
        let result1 = p1[0]
            .trigger
            .result(set1.tgd(p1[0].trigger.tgd), &mut skolem);
        assert!(stopped_indices(&set1, &run1.derivation, &result1).is_empty());
    }

    #[test]
    fn example_b1_early_splice_breaks_the_derivation() {
        // Splicing R(b,b,b) anywhere before the end deactivates every
        // later σ0 trigger — the mechanism behind Example B.1.
        let (_, set, db) = setup(EXAMPLE_B1);
        let run = RestrictedChase::new(&set)
            .strategy(Strategy::PriorityTgd)
            .run(&db, Budget::steps(15));
        assert_eq!(run.outcome, Outcome::BudgetExhausted);
        let persistent = persistently_active(&db, &set, &run.derivation);
        let spliced = splice_at(&db, &set, &run.derivation, &persistent[0].trigger, 1);
        match spliced.validate(&db, &set, false) {
            Err(crate::derivation::DerivationFault::NotActive(i)) => assert!(i >= 1),
            other => panic!("expected NotActive fault, got {other:?}"),
        }
        // The paper-prescribed ℓ pushes the splice past every element
        // of A — but A covers the whole prefix here, so the "repair"
        // can only ever append at the horizon, never discharging the
        // trigger relative to a growing tail: Lemma 4.4's finiteness
        // is what the multi-head case lacks.
    }

    #[test]
    fn example_b1_fair_strategies_terminate() {
        // Under any fair strategy, Example B.1's set terminates on
        // {R(a,b,b)}: once R(b,b,b) is derived all σ0 triggers die.
        let (_, set, db) = setup(
            "R(a,b,b).
             R(x,y,y) -> exists z. R(x,z,y), R(z,y,y).
             R(u,v,w) -> R(w,w,w).",
        );
        for strategy in [Strategy::Fifo, Strategy::Random(3), Strategy::Random(99)] {
            let run = RestrictedChase::new(&set)
                .strategy(strategy)
                .run(&db, Budget::steps(10_000));
            assert_eq!(run.outcome, Outcome::Terminated, "{strategy:?}");
        }
    }
}
