//! Shared helpers for the engines' opt-in profiling stream: periodic
//! memory / progress samples and synthetic per-worker spans.
//!
//! Everything here is gated on `obs.enabled() && obs.profiling()`, so
//! a [`NullObserver`](chase_telemetry::NullObserver) run never reads
//! the clock, walks the instance or touches the allocation counter —
//! the zero-alloc and equivalence guarantees of the engines are
//! preserved bit for bit.

use std::time::Instant;

use chase_core::instance::Instance;
use chase_telemetry::{spans, ChaseObserver, EngineKind, Event};

/// How many chase steps pass between periodic memory/heartbeat
/// samples when no explicit cadence is configured. A power of two so
/// the modulo folds to a mask.
pub(crate) const DEFAULT_HEARTBEAT_EVERY: u64 = 1024;

/// Default step-span sampling cadence: 1 in this many queue pops gets
/// a full `step`/`restriction_check`/`insert`/`match` span subtree
/// (pop 0 is always sampled). Per-pop span timing costs two to four
/// clock reads, which on sub-microsecond chase steps can double the
/// run time; sampling whole subtrees deterministically by pop index
/// keeps the stream well-nested and identical in shape between
/// sequential and parallel runs while holding profiling overhead
/// inside the smoke gate's 10% budget. Trigger fire counts stay exact
/// (they come from `trigger_applied` events, not spans). Use
/// `profile_sample_every(1)` for exhaustive spans.
pub const DEFAULT_PROFILE_SAMPLE_EVERY: u64 = 64;

/// Emits one [`Event::MemorySampled`] + [`Event::Heartbeat`] pair
/// describing the instance and run progress at a step boundary.
///
/// Callers hold a `Some(run_start)` exactly when the observer opted
/// into profiling, so the O(n) [`Instance::memory_footprint`] walk is
/// never paid on unprofiled runs.
pub(crate) fn emit_profile_sample<O: ChaseObserver + ?Sized>(
    obs: &mut O,
    engine: EngineKind,
    run_start: Instant,
    instance: &Instance,
    steps: u64,
    depth: u64,
) {
    let fp = instance.memory_footprint();
    obs.on_event(&Event::MemorySampled {
        engine,
        step: steps,
        atoms: instance.len() as u64,
        atom_bytes: fp.atom_bytes,
        arg_spill_bytes: fp.arg_spill_bytes,
        dedup_bytes: fp.dedup_bytes,
        index_bytes: fp.index_bytes,
        queue_depth: depth,
        allocations: chase_telemetry::alloc_track::allocations(),
    });
    let elapsed_ns = u64::try_from(run_start.elapsed().as_nanos())
        .unwrap_or(u64::MAX)
        .max(1);
    let per_sec = |n: u64| n.saturating_mul(1_000_000_000) / elapsed_ns;
    obs.on_event(&Event::Heartbeat {
        engine,
        step: steps,
        elapsed_ns,
        steps_per_sec: per_sec(steps),
        atoms: instance.len() as u64,
        atoms_per_sec: per_sec(instance.len() as u64),
        queue_depth: depth,
    });
}

/// Replays a parallel discovery batch's per-worker wall-clock as
/// synthetic `worker` spans, attributed to the worker index, in
/// worker-index order — so the merged profiling stream is
/// deterministic in shape (count and order) even though the timings
/// and the true interleaving are not.
pub(crate) fn emit_worker_spans<O: ChaseObserver + ?Sized>(obs: &mut O, worker_nanos: &[u64]) {
    if !(obs.enabled() && obs.profiling()) {
        return;
    }
    for (worker, &nanos) in worker_nanos.iter().enumerate() {
        let tgd = worker as u32;
        obs.on_event(&Event::SpanEntered {
            span: spans::WORKER,
            tgd,
        });
        obs.on_event(&Event::SpanExited {
            span: spans::WORKER,
            tgd,
            nanos,
        });
    }
}
