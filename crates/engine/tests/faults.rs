//! Deterministic fault-injection suite (`cargo test -p chase-engine
//! faults`): every scripted fault — worker panics, injected deadlines,
//! cancellations, flaky telemetry sinks, and arbitrary seeded
//! combinations — must yield a clean [`Outcome`], intact telemetry and
//! no poisoned state. All test functions are named `faults_*` so the
//! CI gate can select exactly this suite.

use proptest::prelude::*;

use chase_core::parser::parse_program;
use chase_core::vocab::Vocabulary;
use chase_engine::driver::Parallelism;
use chase_engine::faults::{FaultPlan, FlakyWriter, WorkerPanic};
use chase_engine::governor::{Budget, Outcome, ResourceGovernor};
use chase_engine::restricted::{ChaseRun, RestrictedChase};
use chase_telemetry::{Event, JsonlWriter, RecordingObserver};

/// A non-terminating multi-TGD program: several TGDs so parallel
/// discovery actually spawns several workers (the driver caps the
/// worker count at the TGD count), and an infinite chase so injected
/// step-indexed faults always get a chance to fire.
const PROGRAM: &str = "\
    R(a,b).\n\
    R(x,y) -> exists z. R(y,z).\n\
    R(x,y) -> S(x,y).\n\
    S(x,y) -> exists w. T(y,w).\n\
    T(x,y) -> S(y,x).";

fn build(vocab: &mut Vocabulary) -> (chase_core::instance::Instance, chase_core::tgd::TgdSet) {
    let program = parse_program(PROGRAM, vocab).expect("test program parses");
    let set = program.tgd_set(vocab).expect("test program is a TGD set");
    (program.database, set)
}

/// Runs the parallel restricted chase under `gov`, recording telemetry.
fn run_parallel(
    set: &chase_core::tgd::TgdSet,
    db: &chase_core::instance::Instance,
    gov: &ResourceGovernor,
) -> (ChaseRun, Vec<Event>) {
    let mut rec = RecordingObserver::default();
    let run = RestrictedChase::new(set)
        .parallelism(Parallelism::On)
        .parallel_threshold(0)
        .run_governed_observed(db, gov, &mut rec);
    (run, rec.events)
}

/// Bit-identity of two runs: outcome, step count, final instance and
/// the full recorded derivation.
fn assert_runs_identical(a: &ChaseRun, b: &ChaseRun) {
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.instance, b.instance);
    assert_eq!(format!("{:?}", a.derivation), format!("{:?}", b.derivation));
}

/// A panicking discovery worker must not change *anything* observable:
/// the driver discards the batch's partial output, recomputes it
/// sequentially, and the run continues — bit-identical outcome, steps,
/// instance, derivation, and telemetry stream (minus the
/// `WorkerPanicked` events that report the recovery itself).
#[test]
fn faults_worker_panic_is_bit_identical_to_a_clean_run() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    let budget = Budget::steps(25);
    let (baseline, baseline_events) =
        run_parallel(&set, &db, &ResourceGovernor::from_budget(budget));
    assert_eq!(baseline.outcome, Outcome::BudgetExhausted);

    let parallel_workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(set.len());

    for batch in 0..3u32 {
        for worker in 0..2u32 {
            let gov = ResourceGovernor::from_budget(budget).with_faults(FaultPlan {
                worker_panic: Some(WorkerPanic { batch, worker }),
                ..FaultPlan::default()
            });
            let (run, events) = run_parallel(&set, &db, &gov);
            assert_runs_identical(&run, &baseline);
            let panics: Vec<&Event> = events
                .iter()
                .filter(|e| matches!(e, Event::WorkerPanicked { .. }))
                .collect();
            // On a multi-core machine the targeted worker exists and
            // the recovery must be reported; on a single core the
            // batch never fans out and nothing panics.
            if parallel_workers > 1 && worker < parallel_workers as u32 {
                assert_eq!(panics.len(), 1, "batch {batch} worker {worker}");
            }
            let without_panics: Vec<&Event> = events
                .iter()
                .filter(|e| !matches!(e, Event::WorkerPanicked { .. }))
                .collect();
            let baseline_refs: Vec<&Event> = baseline_events.iter().collect();
            assert_eq!(without_panics, baseline_refs);
        }
    }
}

/// A worker panicking *during a parallel insert commit* (the per-shard
/// fan-out of a staged trigger-application batch) must be contained:
/// the injection fires before the worker touches any shard, `finish`
/// repairs the orphaned shards inline on the calling thread, and the
/// run proceeds to a bit-identical outcome, instance and derivation —
/// the event stream differs only by the `WorkerPanicked` report.
#[test]
fn faults_insert_commit_worker_panic_is_contained() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    let budget = Budget::steps(25);
    let workers = 3usize;
    let run_forced = |gov: &ResourceGovernor| {
        let mut rec = RecordingObserver::default();
        let run = RestrictedChase::new(&set)
            .parallelism(Parallelism::On)
            .parallel_threshold(0)
            .workers(workers)
            .run_governed_observed(&db, gov, &mut rec);
        (run, rec.events)
    };
    let (baseline, baseline_events) = run_forced(&ResourceGovernor::from_budget(budget));
    assert_eq!(baseline.outcome, Outcome::BudgetExhausted);

    let mut total_panics = 0u32;
    for batch in 0..3u32 {
        for worker in 0..workers as u32 {
            let gov = ResourceGovernor::from_budget(budget).with_faults(FaultPlan {
                insert_panic: Some(WorkerPanic { batch, worker }),
                ..FaultPlan::default()
            });
            let (run, events) = run_forced(&gov);
            assert_runs_identical(&run, &baseline);
            let panics = events
                .iter()
                .filter(|e| matches!(e, Event::WorkerPanicked { .. }))
                .count();
            assert!(
                panics <= 1,
                "batch {batch} worker {worker}: {panics} panics"
            );
            total_panics += panics as u32;
            let without_panics: Vec<&Event> = events
                .iter()
                .filter(|e| !matches!(e, Event::WorkerPanicked { .. }))
                .collect();
            let baseline_refs: Vec<&Event> = baseline_events.iter().collect();
            assert_eq!(
                without_panics, baseline_refs,
                "batch {batch} worker {worker}"
            );
        }
    }
    // The fault arm genuinely fired: with three forced workers and
    // threshold 0, this program dispatches parallel insert commits, so
    // at least one scripted (batch, worker) pair must have landed.
    assert!(total_panics > 0, "no insert-commit panic was ever injected");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// An injected deadline at step `n` stops the run with
    /// `DeadlineExceeded` after exactly `n` applications, and the
    /// partial derivation replays to the partial instance.
    #[test]
    fn faults_injected_deadline_stops_cleanly(n in 0usize..30) {
        let mut vocab = Vocabulary::new();
        let (db, set) = build(&mut vocab);
        let gov = ResourceGovernor::new().with_faults(FaultPlan {
            deadline_at_step: Some(n),
            ..FaultPlan::default()
        });
        let run = RestrictedChase::new(&set).run_governed(&db, &gov);
        prop_assert_eq!(run.outcome, Outcome::DeadlineExceeded);
        prop_assert_eq!(run.steps, n);
        let replayed = run.derivation.validate(&db, &set, false)
            .map_err(|f| TestCaseError::fail(format!("replay: {f}")))?;
        prop_assert_eq!(replayed, run.instance);
    }

    /// An injected cancellation at step `n` stops the run with
    /// `Cancelled` after exactly `n` applications and trips the
    /// governor's shared token (visible to any external holder).
    #[test]
    fn faults_injected_cancel_stops_cleanly(n in 0usize..30) {
        let mut vocab = Vocabulary::new();
        let (db, set) = build(&mut vocab);
        let gov = ResourceGovernor::new().with_faults(FaultPlan {
            cancel_at_step: Some(n),
            ..FaultPlan::default()
        });
        let handle = gov.cancel_token().clone();
        let run = RestrictedChase::new(&set).run_governed(&db, &gov);
        prop_assert_eq!(run.outcome, Outcome::Cancelled);
        prop_assert_eq!(run.steps, n);
        prop_assert!(handle.is_cancelled());
        let replayed = run.derivation.validate(&db, &set, false)
            .map_err(|f| TestCaseError::fail(format!("replay: {f}")))?;
        prop_assert_eq!(replayed, run.instance);
    }

    /// A telemetry sink that starts failing after `k` writes degrades
    /// instead of erroring: the first `k` events land, the rest are
    /// dropped and counted, and closing the sink still succeeds.
    #[test]
    fn faults_flaky_sink_degrades_without_erroring(k in 0u64..12) {
        let mut vocab = Vocabulary::new();
        let (db, set) = build(&mut vocab);
        let (_, events) = run_parallel(&set, &db, &ResourceGovernor::from_budget(Budget::steps(8)));
        prop_assert!(events.len() as u64 > 12, "program must out-emit the quota");
        let mut sink = JsonlWriter::new(FlakyWriter::new(Vec::new(), k));
        for event in &events {
            chase_telemetry::ChaseObserver::on_event(&mut sink, event);
        }
        prop_assert_eq!(sink.events_written(), k);
        prop_assert_eq!(sink.io_errors(), events.len() as u64 - k);
        prop_assert!(sink.first_error().is_some());
        let inner = sink.finish()
            .map_err(|e| TestCaseError::fail(format!("finish: {e}")))?;
        let text = String::from_utf8(inner.into_inner())
            .map_err(|e| TestCaseError::fail(format!("utf8: {e}")))?;
        // Whole events only: no torn lines from the failing writer.
        prop_assert_eq!(text.lines().count() as u64, k);
        for line in text.lines() {
            prop_assert!(line.starts_with('{') && line.ends_with('}'), "torn line: {line}");
        }
    }

    /// The headline property: *every* seeded fault plan — any mix of
    /// worker panics, injected deadlines, cancellations and sink
    /// failures — yields a clean outcome consistent with the plan, a
    /// replayable partial derivation, an intact telemetry stream, and
    /// no state poisoning (a subsequent fault-free run is bit-identical
    /// to a never-faulted baseline).
    #[test]
    fn faults_any_seeded_plan_yields_a_clean_outcome(seed in 0u64..300) {
        let mut vocab = Vocabulary::new();
        let (db, set) = build(&mut vocab);
        let plan = FaultPlan::from_seed(seed);
        let budget = Budget::steps(20);
        let (baseline, baseline_events) =
            run_parallel(&set, &db, &ResourceGovernor::from_budget(budget));

        let gov = ResourceGovernor::from_budget(budget).with_faults(plan);
        let (run, events) = run_parallel(&set, &db, &gov);

        // The outcome is exactly what the plan dictates: cancellation
        // wins, then the injected deadline, then the step budget.
        let expected = match (plan.cancel_at_step, plan.deadline_at_step) {
            (Some(c), Some(d)) if c <= d => Outcome::Cancelled,
            (Some(_), Some(_)) => Outcome::DeadlineExceeded,
            (Some(_), None) => Outcome::Cancelled,
            (None, Some(_)) => Outcome::DeadlineExceeded,
            (None, None) => Outcome::BudgetExhausted,
        };
        prop_assert_eq!(run.outcome, expected, "plan {:?}", plan);

        // The partial state is never poisoned: the derivation replays.
        let replayed = run.derivation.validate(&db, &set, false)
            .map_err(|f| TestCaseError::fail(format!("replay: {f}")))?;
        prop_assert_eq!(replayed, run.instance);

        // Telemetry stayed intact: every event renders and the stream
        // survives a sink failing per the same plan.
        let quota = plan.sink_fail_after.unwrap_or(u64::MAX);
        let mut sink = JsonlWriter::new(FlakyWriter::new(Vec::new(), quota));
        for event in &events {
            chase_telemetry::ChaseObserver::on_event(&mut sink, event);
        }
        prop_assert_eq!(
            sink.events_written() + sink.io_errors(),
            events.len() as u64
        );
        prop_assert!(sink.finish().is_ok());

        // No cross-run poisoning: a fresh fault-free run still matches
        // the baseline exactly, telemetry included.
        let (again, again_events) =
            run_parallel(&set, &db, &ResourceGovernor::from_budget(budget));
        assert_runs_identical(&again, &baseline);
        prop_assert_eq!(again_events, baseline_events);
    }
}
