//! Edge-case tests for the [`ResourceGovernor`]: degenerate budgets,
//! deadlines that are already over, and cancellations requested before
//! the first step. Every case must stop with the *correct* outcome and
//! an empty-but-valid partial result — the database unchanged, zero
//! steps, and a derivation that replays cleanly.

use chase_core::parser::parse_program;
use chase_core::vocab::Vocabulary;
use chase_engine::governor::{Budget, Outcome, ResourceGovernor};
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{ChaseRun, RestrictedChase};
use std::time::{Duration, Instant};

/// A program with work to do: the chase from `R(a,b)` is infinite, so
/// none of these runs may stop because it ran out of triggers.
const PROGRAM: &str = "R(a,b).\nR(x,y) -> exists z. R(y,z).";

fn build(vocab: &mut Vocabulary) -> (chase_core::instance::Instance, chase_core::tgd::TgdSet) {
    let program = parse_program(PROGRAM, vocab).expect("test program parses");
    let set = program.tgd_set(vocab).expect("test program is a TGD set");
    (program.database, set)
}

/// The partial result must be exactly "no work done": the input
/// database, zero steps, and an empty derivation that validates.
fn assert_untouched(
    run: &ChaseRun,
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
) {
    assert_eq!(run.steps, 0);
    assert_eq!(&run.instance, db);
    assert!(run.derivation.is_empty());
    let replayed = run
        .derivation
        .validate(db, set, false)
        .expect("empty derivation replays");
    assert_eq!(&replayed, db);
}

#[test]
fn zero_step_budget_stops_before_any_application() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    let gov = ResourceGovernor::from_budget(Budget::new(0, usize::MAX));
    let run = RestrictedChase::new(&set).run_governed(&db, &gov);
    assert_eq!(run.outcome, Outcome::BudgetExhausted);
    assert_untouched(&run, &db, &set);
}

#[test]
fn zero_atom_budget_stops_before_any_application() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    let gov = ResourceGovernor::from_budget(Budget::new(usize::MAX, 0));
    let run = RestrictedChase::new(&set).run_governed(&db, &gov);
    assert_eq!(run.outcome, Outcome::BudgetExhausted);
    assert_untouched(&run, &db, &set);
}

#[test]
fn deadline_expired_at_start_stops_with_deadline_outcome() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    let gov = ResourceGovernor::new().with_deadline(Instant::now() - Duration::from_secs(1));
    let run = RestrictedChase::new(&set).run_governed(&db, &gov);
    assert_eq!(run.outcome, Outcome::DeadlineExceeded);
    assert_untouched(&run, &db, &set);
}

#[test]
fn cancel_before_first_step_stops_with_cancelled_outcome() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    let gov = ResourceGovernor::new();
    gov.cancel_token().cancel();
    let run = RestrictedChase::new(&set).run_governed(&db, &gov);
    assert_eq!(run.outcome, Outcome::Cancelled);
    assert_untouched(&run, &db, &set);
}

#[test]
fn oblivious_engine_honours_the_same_edge_cases() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);

    let zero_steps = ResourceGovernor::from_budget(Budget::new(0, usize::MAX));
    let run = ObliviousChase::new(&set).run_governed(&db, &zero_steps);
    assert_eq!(run.outcome, Outcome::BudgetExhausted);
    assert_eq!((run.steps, &run.instance), (0, &db));

    let expired = ResourceGovernor::new().with_deadline(Instant::now() - Duration::from_secs(1));
    let run = ObliviousChase::new(&set).run_governed(&db, &expired);
    assert_eq!(run.outcome, Outcome::DeadlineExceeded);
    assert_eq!((run.steps, &run.instance), (0, &db));

    let cancelled = ResourceGovernor::new();
    cancelled.cancel_token().cancel();
    let run = ObliviousChase::new(&set)
        .semi_oblivious()
        .run_governed(&db, &cancelled);
    assert_eq!(run.outcome, Outcome::Cancelled);
    assert_eq!((run.steps, &run.instance), (0, &db));
}

#[test]
fn cancelling_mid_run_from_a_cloned_token_stops_the_run() {
    let mut vocab = Vocabulary::new();
    let (db, set) = build(&mut vocab);
    // The fault plan trips the governor's own (shared) token at step 5
    // — exactly what an external canceller holding a clone would do.
    let gov = ResourceGovernor::new().with_faults(chase_engine::faults::FaultPlan {
        cancel_at_step: Some(5),
        ..chase_engine::faults::FaultPlan::default()
    });
    let external_handle = gov.cancel_token().clone();
    let run = RestrictedChase::new(&set).run_governed(&db, &gov);
    assert_eq!(run.outcome, Outcome::Cancelled);
    assert_eq!(run.steps, 5);
    assert!(external_handle.is_cancelled(), "clones share the flag");
    let replayed = run
        .derivation
        .validate(&db, &set, false)
        .expect("partial derivation replays");
    assert_eq!(replayed, run.instance);
}
