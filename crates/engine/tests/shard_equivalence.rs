//! Differential suite for sharded instance storage: the shard count is
//! a physical layout knob, never a semantic one. For every generated
//! database and every engine configuration, an unsharded run (one
//! shard) and runs over shard counts {2, 4, 7} must agree on the
//! outcome, the step count, every slot id (slot = insertion position,
//! so comparing atoms in slot order pins the whole directory), and the
//! default telemetry stream, event for event.

use proptest::prelude::*;

use chase_core::atom::Atom;
use chase_core::instance::Instance;
use chase_core::parser::parse_program;
use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;
use chase_engine::driver::Parallelism;
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{Budget, Outcome, RestrictedChase};
use chase_telemetry::{Event, RecordingObserver};

/// The shard counts under test; `1` is the unsharded baseline.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Step budget: big enough that the terminating programs finish, small
/// enough that the non-terminating one stays cheap (a budget-exhausted
/// run is compared just like a terminated one).
const STEPS: usize = 400;

/// Rule sets exercising the layouts that matter for sharding: two-atom
/// existential heads (multi-shard write sets), full rules (single-shard
/// writes), joins (cross-shard probes), and head predicates that
/// collide on the same shard at low shard counts.
const RULES: [&str; 3] = [
    // Mixed: shared-null two-atom head, a full rule, and a join body.
    "R(x,y) -> exists z. S(x,z), T(x,z).\n\
     S(x,y) -> T(x,y).\n\
     T(x,y), S(x,z) -> R(y,z).",
    // Full-only cycle: pure propagation, terminates by saturation.
    "R(x,y) -> S(x,y).\n\
     S(x,y) -> T(y,x).\n\
     T(x,y) -> R(x,y).",
    // Two-level existential chain: nulls feed a second invention.
    "R(x,y) -> exists z. S(y,z).\n\
     S(x,y) -> exists w. T(x,w).",
];

const PREDS: [&str; 3] = ["R", "S", "T"];

/// One run's observable surface.
struct Observed {
    outcome: Outcome,
    steps: usize,
    /// Atoms in slot order — position IS the slot id.
    slots: Vec<Atom>,
    events: Vec<Event>,
}

fn parse(rules: usize, facts: &[(usize, usize, usize)]) -> (Vocabulary, TgdSet, Vec<Atom>) {
    let mut text = String::new();
    for (p, a, b) in facts {
        text.push_str(&format!("{}(c{a},c{b}).\n", PREDS[p % PREDS.len()]));
    }
    text.push_str(RULES[rules % RULES.len()]);
    let mut vocab = Vocabulary::new();
    let program = parse_program(&text, &mut vocab).expect("generated program parses");
    let set = program.tgd_set(&vocab).expect("generated rules are TGDs");
    let atoms: Vec<Atom> = program.database.iter().map(|a| a.to_atom()).collect();
    (vocab, set, atoms)
}

/// Rebuilds the database under `shards` shards, preserving insertion
/// order (and therefore slot ids) exactly.
fn db_with_shards(atoms: &[Atom], shards: usize) -> Instance {
    let mut db = Instance::with_shards(shards);
    for atom in atoms {
        db.insert(atom.clone());
    }
    db
}

fn observe_restricted(set: &TgdSet, db: &Instance, parallel: bool) -> Observed {
    observe_restricted_with(set, db, parallel, None)
}

/// `observe_restricted` with an explicit worker-thread cap, so the
/// parallel check/apply fast path engages regardless of host core
/// count (a single-core host otherwise never fans out).
fn observe_restricted_with(
    set: &TgdSet,
    db: &Instance,
    parallel: bool,
    workers: Option<usize>,
) -> Observed {
    let mut rec = RecordingObserver::default();
    let mut engine = RestrictedChase::new(set);
    if parallel {
        engine = engine.parallelism(Parallelism::On).parallel_threshold(0);
    }
    if let Some(w) = workers {
        engine = engine.workers(w);
    }
    let run = engine.run_observed(db, Budget::steps(STEPS), &mut rec);
    Observed {
        outcome: run.outcome,
        steps: run.steps,
        slots: run.instance.iter().map(|a| a.to_atom()).collect(),
        events: rec.events,
    }
}

fn observe_oblivious(set: &TgdSet, db: &Instance) -> Observed {
    let mut rec = RecordingObserver::default();
    let run = ObliviousChase::new(set).run_observed(db, Budget::steps(STEPS), &mut rec);
    Observed {
        outcome: run.outcome,
        steps: run.steps,
        slots: run.instance.iter().map(|a| a.to_atom()).collect(),
        events: rec.events,
    }
}

/// Asserts two observations are identical, with a label naming the
/// diverging configuration in the failure message.
fn assert_same(label: &str, base: &Observed, other: &Observed) -> Result<(), TestCaseError> {
    prop_assert_eq!(base.outcome, other.outcome, "outcome diverged: {}", label);
    prop_assert_eq!(base.steps, other.steps, "step count diverged: {}", label);
    prop_assert_eq!(&base.slots, &other.slots, "slot ids diverged: {}", label);
    prop_assert_eq!(&base.events, &other.events, "telemetry diverged: {}", label);
    Ok(())
}

fn facts_strategy() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0usize..3, 0usize..6, 0usize..6), 1..32)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Sequential restricted chase: shard count changes nothing.
    #[test]
    fn shard_count_is_invisible_to_the_restricted_chase(
        rules in 0usize..RULES.len(),
        facts in facts_strategy(),
    ) {
        let (_vocab, set, atoms) = parse(rules, &facts);
        let base = observe_restricted(&set, &db_with_shards(&atoms, SHARD_COUNTS[0]), false);
        for &n in &SHARD_COUNTS[1..] {
            let other = observe_restricted(&set, &db_with_shards(&atoms, n), false);
            assert_same(&format!("rules {rules}, {n} shards, sequential"), &base, &other)?;
        }
    }

    /// Parallel restricted chase (threshold 0 forces the batch path and
    /// the sharded restriction checks): still bit-identical, for every
    /// shard count, to the unsharded sequential baseline.
    #[test]
    fn shard_count_is_invisible_to_the_parallel_driver(
        rules in 0usize..RULES.len(),
        facts in facts_strategy(),
    ) {
        let (_vocab, set, atoms) = parse(rules, &facts);
        let base = observe_restricted(&set, &db_with_shards(&atoms, SHARD_COUNTS[0]), false);
        for &n in &SHARD_COUNTS {
            let other = observe_restricted(&set, &db_with_shards(&atoms, n), true);
            assert_same(&format!("rules {rules}, {n} shards, parallel"), &base, &other)?;
        }
    }

    /// Parallel trigger *application* (DESIGN.md §16): mask-disjoint
    /// batches stage their verdicts, nulls and pre-reserved slot ids
    /// ahead of the replay, and the per-shard commit work fans out
    /// over the pool. Across worker counts {1, 2, 4} × shard counts
    /// {1, 2, 4, 7}, outcome, step count, every slot id and the full
    /// telemetry stream must equal the unsharded sequential baseline.
    #[test]
    fn parallel_apply_is_bit_identical_across_threads_and_shards(
        rules in 0usize..RULES.len(),
        facts in facts_strategy(),
    ) {
        let (_vocab, set, atoms) = parse(rules, &facts);
        let base = observe_restricted(&set, &db_with_shards(&atoms, SHARD_COUNTS[0]), false);
        for &n in &SHARD_COUNTS {
            for threads in [1usize, 2, 4] {
                let other = observe_restricted_with(
                    &set,
                    &db_with_shards(&atoms, n),
                    true,
                    Some(threads),
                );
                assert_same(
                    &format!("rules {rules}, {n} shards, {threads} threads, parallel apply"),
                    &base,
                    &other,
                )?;
            }
        }
    }

    /// Oblivious chase: same invariance (it shares the instance layer
    /// and the discovery pool, not the restriction checks).
    #[test]
    fn shard_count_is_invisible_to_the_oblivious_chase(
        rules in 0usize..RULES.len(),
        facts in facts_strategy(),
    ) {
        let (_vocab, set, atoms) = parse(rules, &facts);
        let base = observe_oblivious(&set, &db_with_shards(&atoms, SHARD_COUNTS[0]));
        for &n in &SHARD_COUNTS[1..] {
            let other = observe_oblivious(&set, &db_with_shards(&atoms, n));
            assert_same(&format!("rules {rules}, {n} shards, oblivious"), &base, &other)?;
        }
    }
}
