//! Golden tests for `chasectl`'s exit codes and usage errors: every
//! documented exit code is produced by a real invocation of the built
//! binary, and every malformed command line fails with code 2 plus a
//! one-line usage hint on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_chasectl");

/// A non-terminating program (infinite restricted chase from `R(a,b)`).
const INFINITE: &str = "R(a,b).\nR(x,y) -> exists z. R(y,z).\n";

/// A terminating program: one application saturates it.
const FINITE: &str = "R(a,b).\nR(x,y) -> S(x).\n";

/// Writes a throwaway rule file; `name` keeps concurrent tests apart.
fn rule_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chasectl-golden-{}-{name}.rules",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("write rules");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn chasectl")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Usage errors must carry the one-line hint so the fix is obvious.
fn assert_usage_error(out: &Output, context: &str) {
    assert_eq!(code(out), 2, "{context}: {}", stderr(out));
    let err = stderr(out);
    assert!(
        err.lines().any(|l| l.starts_with("usage: chasectl")),
        "{context}: no usage hint in {err:?}"
    );
}

#[test]
fn terminating_chase_exits_zero() {
    let rules = rule_file("term", FINITE);
    let out = run(&["chase", rules.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("terminated"));
}

#[test]
fn budget_exhaustion_exits_three() {
    let rules = rule_file("budget", INFINITE);
    let out = run(&["chase", rules.to_str().unwrap(), "--steps", "5"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("budget exhausted"));
}

#[test]
fn expired_deadline_exits_four() {
    let rules = rule_file("deadline", INFINITE);
    let out = run(&["chase", rules.to_str().unwrap(), "--deadline-ms", "0"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("deadline exceeded"));
}

#[test]
fn cancel_after_exits_five() {
    let rules = rule_file("cancel", INFINITE);
    let out = run(&["chase", rules.to_str().unwrap(), "--cancel-after", "3"]);
    assert_eq!(code(&out), 5, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cancelled after 3 steps"), "{stdout}");
}

#[test]
fn oblivious_honours_the_resilience_flags_too() {
    let rules = rule_file("obl", INFINITE);
    let out = run(&["oblivious", rules.to_str().unwrap(), "--deadline-ms", "0"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    let out = run(&[
        "oblivious",
        rules.to_str().unwrap(),
        "--cancel-after",
        "2",
        "--semi",
    ]);
    assert_eq!(code(&out), 5, "{}", stderr(&out));
}

#[test]
fn decide_with_expired_deadline_exits_four_with_honest_unknown() {
    let rules = rule_file("decide-dl", INFINITE);
    let out = run(&["decide", rules.to_str().unwrap(), "--deadline-ms", "0"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("deadline exceeded"), "{stdout}");
}

#[test]
fn decide_without_deadline_exits_zero() {
    let rules = rule_file("decide", INFINITE);
    let out = run(&["decide", rules.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
}

#[test]
fn runtime_errors_exit_one() {
    let out = run(&["chase", "/no/such/file.rules"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&run(&["frobnicate"]), "unknown command");
}

#[test]
fn missing_command_is_a_usage_error() {
    assert_usage_error(&run(&[]), "no arguments");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let rules = rule_file("flags", FINITE);
    let path = rules.to_str().unwrap();
    assert_usage_error(&run(&["chase", path, "--stepz", "5"]), "typo'd flag");
    assert_usage_error(
        &run(&["decide", path, "--cancel-after", "3"]),
        "flag of another command",
    );
    assert_usage_error(
        &run(&["classify", path, "--metrics"]),
        "flag classify lacks",
    );
}

#[test]
fn malformed_flag_values_are_usage_errors() {
    let rules = rule_file("values", FINITE);
    let path = rules.to_str().unwrap();
    assert_usage_error(
        &run(&["chase", path, "--deadline-ms", "soon"]),
        "bad deadline",
    );
    assert_usage_error(
        &run(&["chase", path, "--deadline-ms", "-5"]),
        "negative deadline",
    );
    assert_usage_error(
        &run(&["chase", path, "--strategy", "random", "--seed", "0xG"]),
        "bad seed",
    );
    assert_usage_error(&run(&["chase", path, "--steps", "many"]), "bad steps");
    assert_usage_error(
        &run(&["chase", path, "--cancel-after"]),
        "flag without value",
    );
}

#[test]
fn help_prints_the_exit_code_table() {
    let out = run(&["help"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--deadline-ms"), "{stdout}");
    assert!(stdout.contains("--cancel-after"), "{stdout}");
    assert!(stdout.contains("exit codes"), "{stdout}");
}
