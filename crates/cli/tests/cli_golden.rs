//! Golden tests for `chasectl`'s exit codes and usage errors: every
//! documented exit code is produced by a real invocation of the built
//! binary, and every malformed command line fails with code 2 plus a
//! one-line usage hint on stderr.

use std::path::PathBuf;
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_chasectl");

/// A non-terminating program (infinite restricted chase from `R(a,b)`).
const INFINITE: &str = "R(a,b).\nR(x,y) -> exists z. R(y,z).\n";

/// A terminating program: one application saturates it.
const FINITE: &str = "R(a,b).\nR(x,y) -> S(x).\n";

/// Writes a throwaway rule file; `name` keeps concurrent tests apart.
fn rule_file(name: &str, contents: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "chasectl-golden-{}-{name}.rules",
        std::process::id()
    ));
    std::fs::write(&path, contents).expect("write rules");
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN)
        .args(args)
        .output()
        .expect("spawn chasectl")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Usage errors must carry the one-line hint so the fix is obvious.
fn assert_usage_error(out: &Output, context: &str) {
    assert_eq!(code(out), 2, "{context}: {}", stderr(out));
    let err = stderr(out);
    assert!(
        err.lines().any(|l| l.starts_with("usage: chasectl")),
        "{context}: no usage hint in {err:?}"
    );
}

#[test]
fn terminating_chase_exits_zero() {
    let rules = rule_file("term", FINITE);
    let out = run(&["chase", rules.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("terminated"));
}

#[test]
fn budget_exhaustion_exits_three() {
    let rules = rule_file("budget", INFINITE);
    let out = run(&["chase", rules.to_str().unwrap(), "--steps", "5"]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("budget exhausted"));
}

#[test]
fn expired_deadline_exits_four() {
    let rules = rule_file("deadline", INFINITE);
    let out = run(&["chase", rules.to_str().unwrap(), "--deadline-ms", "0"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("deadline exceeded"));
}

#[test]
fn cancel_after_exits_five() {
    let rules = rule_file("cancel", INFINITE);
    let out = run(&["chase", rules.to_str().unwrap(), "--cancel-after", "3"]);
    assert_eq!(code(&out), 5, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cancelled after 3 steps"), "{stdout}");
}

#[test]
fn oblivious_honours_the_resilience_flags_too() {
    let rules = rule_file("obl", INFINITE);
    let out = run(&["oblivious", rules.to_str().unwrap(), "--deadline-ms", "0"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    let out = run(&[
        "oblivious",
        rules.to_str().unwrap(),
        "--cancel-after",
        "2",
        "--semi",
    ]);
    assert_eq!(code(&out), 5, "{}", stderr(&out));
}

#[test]
fn decide_with_expired_deadline_exits_four_with_honest_unknown() {
    let rules = rule_file("decide-dl", INFINITE);
    let out = run(&["decide", rules.to_str().unwrap(), "--deadline-ms", "0"]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("deadline exceeded"), "{stdout}");
}

#[test]
fn decide_without_deadline_exits_zero() {
    let rules = rule_file("decide", INFINITE);
    let out = run(&["decide", rules.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
}

#[test]
fn runtime_errors_exit_one() {
    let out = run(&["chase", "/no/such/file.rules"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn unknown_command_is_a_usage_error() {
    assert_usage_error(&run(&["frobnicate"]), "unknown command");
}

#[test]
fn missing_command_is_a_usage_error() {
    assert_usage_error(&run(&[]), "no arguments");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let rules = rule_file("flags", FINITE);
    let path = rules.to_str().unwrap();
    assert_usage_error(&run(&["chase", path, "--stepz", "5"]), "typo'd flag");
    assert_usage_error(
        &run(&["decide", path, "--cancel-after", "3"]),
        "flag of another command",
    );
    assert_usage_error(
        &run(&["classify", path, "--metrics"]),
        "flag classify lacks",
    );
}

#[test]
fn malformed_flag_values_are_usage_errors() {
    let rules = rule_file("values", FINITE);
    let path = rules.to_str().unwrap();
    assert_usage_error(
        &run(&["chase", path, "--deadline-ms", "soon"]),
        "bad deadline",
    );
    assert_usage_error(
        &run(&["chase", path, "--deadline-ms", "-5"]),
        "negative deadline",
    );
    assert_usage_error(
        &run(&["chase", path, "--strategy", "random", "--seed", "0xG"]),
        "bad seed",
    );
    assert_usage_error(&run(&["chase", path, "--steps", "many"]), "bad steps");
    assert_usage_error(
        &run(&["chase", path, "--cancel-after"]),
        "flag without value",
    );
    assert_usage_error(&run(&["chase", path, "--threads", "0"]), "zero threads");
    assert_usage_error(
        &run(&["oblivious", path, "--threads", "lots"]),
        "bad threads",
    );
}

/// `--threads` outside `1..=1024` is a usage error with an exact,
/// actionable message (1024 is the instance layer's shard ceiling —
/// more workers can never be scheduled).
#[test]
fn threads_flag_bounds_are_usage_errors_with_exact_messages() {
    let rules = rule_file("threads-bounds", FINITE);
    let path = rules.to_str().unwrap();
    let zero = run(&["chase", path, "--threads", "0"]);
    assert_usage_error(&zero, "zero threads");
    assert!(
        stderr(&zero).contains("--threads must be at least 1 (1 = sequential)"),
        "zero-threads message: {}",
        stderr(&zero)
    );
    for over in ["1025", "4096"] {
        let out = run(&["chase", path, "--threads", over]);
        assert_usage_error(&out, "oversized threads");
        assert!(
            stderr(&out).contains(&format!("--threads must be at most 1024 (got {over})")),
            "oversized-threads message: {}",
            stderr(&out)
        );
    }
    // The ceiling itself is accepted (and the boundary below it).
    let ok = run(&["chase", path, "--threads", "1024"]);
    assert_eq!(code(&ok), 0, "{}", stderr(&ok));
    // Oblivious and profile share the same parser.
    let ob = run(&["oblivious", path, "--threads", "2000"]);
    assert_usage_error(&ob, "oblivious oversized threads");
    assert!(
        stderr(&ob).contains("must be at most 1024"),
        "{}",
        stderr(&ob)
    );
}

/// `--threads` routes through the parallel driver, which must agree
/// with the sequential engines on every workload.
#[test]
fn threads_flag_matches_sequential_output() {
    let rules = rule_file("threads", FINITE);
    let path = rules.to_str().unwrap();
    let seq = run(&["chase", path]);
    let par = run(&["chase", path, "--threads", "2"]);
    assert_eq!(code(&seq), 0, "{}", stderr(&seq));
    assert_eq!(code(&par), 0, "{}", stderr(&par));
    assert_eq!(seq.stdout, par.stdout, "parallel run diverged");
    let ob_seq = run(&["oblivious", path]);
    let ob_par = run(&["oblivious", path, "--threads", "2"]);
    assert_eq!(code(&ob_par), 0, "{}", stderr(&ob_par));
    assert_eq!(ob_seq.stdout, ob_par.stdout, "parallel oblivious diverged");
    let prof = run(&["profile", path, "--threads", "2", "--runs", "1"]);
    assert_eq!(code(&prof), 0, "{}", stderr(&prof));
}

#[test]
fn help_prints_the_exit_code_table() {
    let out = run(&["help"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--deadline-ms"), "{stdout}");
    assert!(stdout.contains("--cancel-after"), "{stdout}");
    assert!(stdout.contains("exit codes"), "{stdout}");
    assert!(stdout.contains("profile"), "{stdout}");
    assert!(stdout.contains("--follow"), "{stdout}");
}

/// A chain whose transitive closure gives `profile` real work.
const CLOSURE: &str = "E(a,b). E(b,c). E(c,d).\n\
                       E(x,y) -> P(x,y).\n\
                       E(x,y), P(y,z) -> P(x,z).\n";

#[test]
fn profile_reports_spans_and_writes_a_parseable_json_report() {
    let rules = rule_file("profile", CLOSURE);
    let json = std::env::temp_dir().join(format!(
        "chasectl-golden-{}-report.json",
        std::process::id()
    ));
    let folded = std::env::temp_dir().join(format!(
        "chasectl-golden-{}-stacks.folded",
        std::process::id()
    ));
    let out = run(&[
        "profile",
        rules.to_str().unwrap(),
        "--runs",
        "2",
        "--json",
        json.to_str().unwrap(),
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("restricted chase: terminated"), "{stdout}");
    assert!(stdout.contains("overhead: baseline"), "{stdout}");
    assert!(stdout.contains("restriction_check"), "{stdout}");
    assert!(stdout.contains("per-TGD hot spots"), "{stdout}");
    assert!(stdout.contains("memory @ step"), "{stdout}");
    // The JSON report is itself a valid one-line trace: stats parses it.
    let report = std::fs::read_to_string(&json).expect("json report written");
    assert!(
        report.starts_with("{\"event\":\"profile_report\",\"v\":2,"),
        "{report}"
    );
    let out = run(&["stats", json.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("profile_report"));
    // Collapsed stacks are semicolon-joined paths with a count.
    let stacks = std::fs::read_to_string(&folded).expect("folded written");
    assert!(stacks.lines().any(|l| l.starts_with("run;")), "{stacks}");
    let _ = std::fs::remove_file(json);
    let _ = std::fs::remove_file(folded);
}

#[test]
fn profile_usage_errors() {
    let rules = rule_file("profile-usage", CLOSURE);
    let path = rules.to_str().unwrap();
    assert_usage_error(
        &run(&["profile", path, "--semi"]),
        "--semi without --oblivious",
    );
    assert_usage_error(&run(&["profile", path, "--metrics"]), "foreign flag");
    assert_usage_error(&run(&["profile", path, "--runs", "several"]), "bad runs");
}

#[test]
fn stats_merges_multiple_traces_and_directories() {
    let rules = rule_file("stats-merge", CLOSURE);
    let dir = std::env::temp_dir().join(format!("chasectl-golden-{}-traces", std::process::id()));
    std::fs::create_dir_all(&dir).expect("trace dir");
    for name in ["a.jsonl", "b.jsonl"] {
        let trace = dir.join(name);
        let out = run(&[
            "chase",
            rules.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(code(&out), 0, "{}", stderr(&out));
    }
    // Directory operand: both traces merge into one table.
    let out = run(&["stats", dir.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("merged: 2 file(s)"), "{stdout}");
    // Explicit file operands agree with the directory expansion.
    let a = dir.join("a.jsonl");
    let b = dir.join("b.jsonl");
    let out2 = run(&["stats", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(code(&out2), 0, "{}", stderr(&out2));
    assert!(String::from_utf8_lossy(&out2.stdout).contains("merged: 2 file(s)"));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn stats_follow_tails_a_trace_and_prints_heartbeats() {
    let rules = rule_file("stats-follow", CLOSURE);
    let trace = std::env::temp_dir().join(format!(
        "chasectl-golden-{}-follow.jsonl",
        std::process::id()
    ));
    let out = run(&[
        "chase",
        rules.to_str().unwrap(),
        "--trace",
        trace.to_str().unwrap(),
        "--profile",
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let out = run(&[
        "stats",
        "--follow",
        trace.to_str().unwrap(),
        "--idle-exit-ms",
        "50",
    ]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("heartbeat: step"), "{stdout}");
    assert!(stdout.contains("span.run"), "{stdout}");
    let _ = std::fs::remove_file(trace);
}

#[test]
fn stats_usage_errors() {
    assert_usage_error(&run(&["stats"]), "no operands");
    assert_usage_error(
        &run(&["stats", "--idle-exit-ms", "50", "x.jsonl"]),
        "idle without follow",
    );
    assert_usage_error(
        &run(&["stats", "--follow", "a.jsonl", "b.jsonl"]),
        "follow with two files",
    );
}

/// Boots `chasectl serve` on a throwaway unix socket and blocks until
/// it prints its listening line, so clients cannot race the bind.
fn boot_server(tag: &str) -> (std::process::Child, String) {
    use std::io::BufRead;
    let socket =
        std::env::temp_dir().join(format!("chasectl-golden-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket);
    let endpoint = format!("unix:{}", socket.display());
    let mut child = Command::new(BIN)
        .args(["serve", "--socket", &endpoint])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn chasectl serve");
    let stdout = child.stdout.take().expect("server stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read listening line");
    assert!(line.contains("listening on"), "{line}");
    (child, endpoint)
}

#[test]
fn serve_round_trips_chase_decide_and_control_ops() {
    let (mut server, endpoint) = boot_server("roundtrip");
    let finite = rule_file("srv-finite", FINITE);
    let infinite = rule_file("srv-infinite", INFINITE);
    let broken = rule_file("srv-broken", "this is not a rule file");

    let out = run(&["client", &endpoint, "ping"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("pong"));

    // A served chase matches the direct command's exit-code contract.
    let out = run(&["client", &endpoint, "chase", finite.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("terminated"), "{stdout}");
    assert!(stdout.contains("fingerprint"), "{stdout}");

    let out = run(&[
        "client",
        &endpoint,
        "chase",
        infinite.to_str().unwrap(),
        "--steps",
        "5",
    ]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));

    let out = run(&[
        "client",
        &endpoint,
        "chase",
        infinite.to_str().unwrap(),
        "--deadline-ms",
        "0",
    ]);
    assert_eq!(code(&out), 4, "{}", stderr(&out));

    // A parse failure is a typed per-session result, not a dead server.
    let out = run(&["client", &endpoint, "chase", broken.to_str().unwrap()]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(stderr(&out).contains("parse_error"), "{}", stderr(&out));

    // Telemetry relays event lines in the shared flat-JSON grammar.
    let out = run(&[
        "client",
        &endpoint,
        "chase",
        infinite.to_str().unwrap(),
        "--steps",
        "3",
        "--telemetry",
    ]);
    assert_eq!(code(&out), 3, "{}", stderr(&out));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"type\":\"event\""), "{stdout}");
    assert!(stdout.contains("\"event\":\"trigger_applied\""), "{stdout}");

    let out = run(&["client", &endpoint, "decide", finite.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("verdict terminating"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Cancelling an unknown session is acknowledged but exits 1.
    let out = run(&["client", &endpoint, "cancel", "--id", "no-such-session"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("cancel_ack"));

    let out = run(&["client", &endpoint, "shutdown"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(String::from_utf8_lossy(&out.stdout).contains("shutdown_ack"));

    let status = server.wait().expect("server exit");
    assert!(status.success(), "server exited {status:?}");
}

#[test]
fn serve_and_client_usage_errors() {
    assert_usage_error(&run(&["serve"]), "serve without --socket");
    assert_usage_error(&run(&["serve", "--socket"]), "socket without value");
    assert_usage_error(&run(&["client"]), "client without endpoint");
    assert_usage_error(
        &run(&["client", "unix:/tmp/x.sock"]),
        "client without operation",
    );
    assert_usage_error(
        &run(&["client", "unix:/tmp/x.sock", "frobnicate"]),
        "unknown client operation",
    );
    assert_usage_error(
        &run(&["client", "unix:/tmp/x.sock", "chase"]),
        "client chase without file",
    );
    assert_usage_error(
        &run(&["client", "unix:/tmp/x.sock", "cancel"]),
        "cancel without --id",
    );
    assert_usage_error(&run(&["client", "nonsense", "ping"]), "bad endpoint");
}

#[test]
fn client_against_no_server_is_a_runtime_error() {
    let out = run(&["client", "unix:/tmp/chasectl-no-such-server.sock", "ping"]);
    assert_eq!(code(&out), 1, "{}", stderr(&out));
    assert!(stderr(&out).contains("i/o error"), "{}", stderr(&out));
}
