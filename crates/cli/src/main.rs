//! `chasectl` — command-line front end for the restricted-chase
//! toolkit.
//!
//! ```text
//! chasectl classify <file>          structural class profile
//! chasectl chase <file> [--steps N] [--strategy fifo|lifo|random|priority] [--seed N]
//! chasectl oblivious <file> [--steps N] [--semi]
//! chasectl decide <file>            all-instances termination verdict
//! chasectl dot <file> [--steps N]   chase, then emit the derivation as graphviz
//! chasectl suite [--metrics]        run the deciders over the labelled suite
//! chasectl stats <trace.jsonl>      aggregate a --trace file into a counter table
//! ```
//!
//! `chase`, `oblivious` and `decide` additionally accept the telemetry
//! flags `--trace <file.jsonl>` (stream every event as JSON Lines) and
//! `--metrics` (print a counter/phase table after the run).
//!
//! Rule files contain TGDs and facts in the syntax of DESIGN.md §5.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use chase_core::parser::parse_program;
use chase_core::vocab::Vocabulary;
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{Budget, Outcome, RestrictedChase, Strategy};
use chase_telemetry::summary::format_nanos;
use chase_telemetry::{
    time_phase, ChaseObserver, CountingObserver, Event, JsonlWriter, TelemetrySummary,
};
use chase_termination::{decide_observed, DeciderConfig};
use chase_workloads::runner::run_labelled_suite;
use tgd_classes::profile::ClassProfile;

mod stats;

/// Default RNG seed for `--strategy random` (overridable via `--seed`).
const DEFAULT_RANDOM_SEED: u64 = 0xC0FFEE;

/// Step cap applied to `chasectl dot` when no `--steps` is given; an
/// explicit `--steps` is always honoured verbatim.
const DEFAULT_DOT_STEPS: usize = 200;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chasectl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: chasectl <classify|chase|oblivious|decide|dot|suite|stats> [<file>] [options]\n\
     options: --steps N     --strategy fifo|lifo|random|priority   --semi\n\
     \u{20}        --seed N      RNG seed for --strategy random (default 0xC0FFEE)\n\
     \u{20}        --trace F     write one JSON event per line to F (chase|oblivious|decide)\n\
     \u{20}        --metrics     print counter/phase table (chase|oblivious|decide|suite)"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "suite" => cmd_suite(args.iter().any(|a| a == "--metrics")),
        "stats" => {
            let path = args.get(1).ok_or_else(usage)?;
            stats::cmd_stats(path)
        }
        "classify" | "chase" | "oblivious" | "decide" | "dot" => {
            let path = args.get(1).ok_or_else(usage)?;
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut vocab = Vocabulary::new();
            let program = parse_program(&src, &mut vocab).map_err(|e| e.to_string())?;
            let set = program.tgd_set(&vocab).map_err(|e| e.to_string())?;
            let steps_flag = flag_value(args, "--steps")?
                .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
                .transpose()?;
            let steps = steps_flag.unwrap_or(10_000);
            match command.as_str() {
                "classify" => cmd_classify(&set, &vocab),
                "chase" => {
                    let seed = match flag_value(args, "--seed")? {
                        Some(s) => Some(parse_seed(&s)?),
                        None => None,
                    };
                    let strategy = match flag_value(args, "--strategy")?.as_deref() {
                        None | Some("fifo") => Strategy::Fifo,
                        Some("lifo") => Strategy::Lifo,
                        Some("random") => Strategy::Random(seed.unwrap_or(DEFAULT_RANDOM_SEED)),
                        Some("priority") => Strategy::PriorityTgd,
                        Some(other) => return Err(format!("unknown strategy '{other}'")),
                    };
                    if seed.is_some() && !matches!(strategy, Strategy::Random(_)) {
                        eprintln!("chasectl: note: --seed only affects --strategy random");
                    }
                    let mut telemetry = CliTelemetry::from_args(args)?;
                    cmd_chase(
                        &program.database,
                        &set,
                        &vocab,
                        strategy,
                        steps,
                        &mut telemetry,
                    )?;
                    telemetry.finish(true)
                }
                "oblivious" => {
                    let mut telemetry = CliTelemetry::from_args(args)?;
                    cmd_oblivious(
                        &program.database,
                        &set,
                        &vocab,
                        args.iter().any(|a| a == "--semi"),
                        steps,
                        &mut telemetry,
                    )?;
                    telemetry.finish(true)
                }
                "decide" => {
                    let mut telemetry = CliTelemetry::from_args(args)?;
                    cmd_decide(&set, &vocab, &mut telemetry)?;
                    // `explain` already embedded the metrics table.
                    telemetry.finish(false)
                }
                "dot" => cmd_dot(&program.database, &set, &vocab, steps_flag),
                _ => unreachable!(),
            }
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

/// Looks up `flag`'s value. A flag present without a following value
/// is an error, not a silent fallback to the default.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(format!("{flag} requires a value")),
        },
    }
}

/// Parses a `--seed` value, accepting decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|e| format!("invalid --seed '{s}': {e}"))
}

/// The telemetry sinks requested on the command line: an optional
/// `--trace <file.jsonl>` JSON Lines stream and an optional
/// `--metrics` counter aggregation. Implements [`ChaseObserver`] by
/// fanning each event out to whichever sinks are present; with
/// neither flag it reports `enabled() == false` and the engines skip
/// event construction entirely.
struct CliTelemetry {
    trace: Option<(String, JsonlWriter<BufWriter<File>>)>,
    metrics: Option<CountingObserver>,
}

impl CliTelemetry {
    fn from_args(args: &[String]) -> Result<Self, String> {
        let trace = match flag_value(args, "--trace")? {
            Some(path) => {
                let file = File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
                Some((path, JsonlWriter::new(BufWriter::new(file))))
            }
            None => None,
        };
        let metrics = args
            .iter()
            .any(|a| a == "--metrics")
            .then(CountingObserver::new);
        Ok(CliTelemetry { trace, metrics })
    }

    /// The metrics aggregation so far, if `--metrics` was given.
    fn summary(&self) -> Option<TelemetrySummary> {
        self.metrics.as_ref().map(CountingObserver::summary)
    }

    /// Closes the trace file (surfacing any deferred I/O error) and,
    /// when `print_metrics`, renders the `--metrics` table to stdout.
    fn finish(self, print_metrics: bool) -> Result<(), String> {
        if let Some((path, writer)) = self.trace {
            let events = writer.events_written();
            writer
                .finish()
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("chasectl: trace: {events} event(s) written to {path}");
        }
        if print_metrics {
            if let Some(metrics) = self.metrics {
                println!("telemetry:");
                print!("{}", metrics.summary().render_table());
            }
        }
        Ok(())
    }
}

impl ChaseObserver for CliTelemetry {
    fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    fn on_event(&mut self, event: &Event) {
        if let Some((_, writer)) = self.trace.as_mut() {
            writer.on_event(event);
        }
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.on_event(event);
        }
    }
}

fn cmd_classify(set: &chase_core::tgd::TgdSet, vocab: &Vocabulary) -> Result<(), String> {
    let profile = ClassProfile::analyse(set, vocab, Budget::steps(20_000));
    println!("rules: {}", set.len());
    println!(
        "schema: {} predicates, max arity {}",
        set.schema_preds().len(),
        set.max_arity()
    );
    println!("profile: {}", profile.summary());
    println!(
        "decidable fragment (single-head guarded or sticky): {}",
        profile.in_decidable_fragment()
    );
    Ok(())
}

fn cmd_chase(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    strategy: Strategy,
    steps: usize,
    telemetry: &mut CliTelemetry,
) -> Result<(), String> {
    let run = time_phase(telemetry, "chase", |obs| {
        RestrictedChase::new(set)
            .strategy(strategy)
            .run_observed(db, Budget::steps(steps), obs)
    });
    println!(
        "restricted chase ({strategy:?}): {} after {} steps, {} atoms",
        match run.outcome {
            Outcome::Terminated => "terminated",
            Outcome::BudgetExhausted => "budget exhausted",
        },
        run.steps,
        run.instance.len()
    );
    if run.instance.len() <= 50 {
        println!("{}", run.instance.display(vocab));
    }
    Ok(())
}

fn cmd_oblivious(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    semi: bool,
    steps: usize,
    telemetry: &mut CliTelemetry,
) -> Result<(), String> {
    let engine = if semi {
        ObliviousChase::new(set).semi_oblivious()
    } else {
        ObliviousChase::new(set)
    };
    let run = time_phase(telemetry, "chase", |obs| {
        engine.run_observed(db, Budget::steps(steps), obs)
    });
    println!(
        "{} chase: {} after {} steps, {} atoms",
        if semi { "semi-oblivious" } else { "oblivious" },
        match run.outcome {
            Outcome::Terminated => "terminated",
            Outcome::BudgetExhausted => "budget exhausted",
        },
        run.steps,
        run.instance.len()
    );
    if run.instance.len() <= 50 {
        println!("{}", run.instance.display(vocab));
    }
    Ok(())
}

fn cmd_decide(
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    telemetry: &mut CliTelemetry,
) -> Result<(), String> {
    let verdict = decide_observed(set, vocab, &DeciderConfig::default(), telemetry);
    let profile = ClassProfile::analyse(set, vocab, Budget::steps(20_000));
    let summary = telemetry.summary();
    print!(
        "{}",
        chase_termination::report::explain(&verdict, set, vocab, Some(&profile), summary.as_ref())
    );
    Ok(())
}

fn cmd_dot(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    steps_flag: Option<usize>,
) -> Result<(), String> {
    // An explicit --steps is honoured verbatim; only the default
    // budget is capped (graph output for huge derivations is rarely
    // what anyone wants by accident).
    let steps = match steps_flag {
        Some(explicit) => explicit,
        None => {
            eprintln!(
                "chasectl dot: no --steps given; capping the derivation at {DEFAULT_DOT_STEPS} \
                 steps (pass --steps N to override)"
            );
            DEFAULT_DOT_STEPS
        }
    };
    let run = RestrictedChase::new(set)
        .strategy(Strategy::Fifo)
        .run(db, Budget::steps(steps));
    print!(
        "{}",
        chase_engine::dot::derivation_to_dot(&run.derivation, set, vocab)
    );
    Ok(())
}

fn cmd_suite(metrics: bool) -> Result<(), String> {
    let run = run_labelled_suite(&DeciderConfig::default());
    println!(
        "{:<34} {:>15} {:>16} {:>5} {:>10}",
        "entry", "expected", "verdict", "agree", "decide-in"
    );
    for entry in &run.entries {
        println!(
            "{:<34} {:>15} {:>16} {:>5} {:>10}",
            entry.name,
            entry.expected_label(),
            entry.verdict_label(),
            if entry.agrees() { "yes" } else { "NO" },
            format_nanos(entry.nanos)
        );
        if metrics {
            for (phase, nanos) in &entry.telemetry.phases {
                println!("    {:<30} {:>10}", phase, format_nanos(*nanos));
            }
        }
    }
    println!(
        "---\n{}/{} correct in {}",
        run.correct(),
        run.total(),
        format_nanos(run.total_nanos())
    );
    if metrics {
        println!("aggregate telemetry:");
        print!("{}", run.aggregate_telemetry().render_table());
    }
    if run.correct() == run.total() {
        Ok(())
    } else {
        Err("suite disagreement".into())
    }
}
