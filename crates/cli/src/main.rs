//! `chasectl` — command-line front end for the restricted-chase
//! toolkit.
//!
//! ```text
//! chasectl classify <file>          structural class profile
//! chasectl chase <file> [--steps N] [--strategy fifo|lifo|random|priority]
//! chasectl oblivious <file> [--steps N] [--semi]
//! chasectl decide <file>            all-instances termination verdict
//! chasectl dot <file> [--steps N]   chase, then emit the derivation as graphviz
//! chasectl suite                    run the deciders over the labelled suite
//! ```
//!
//! Rule files contain TGDs and facts in the syntax of DESIGN.md §5.

use std::process::ExitCode;

use chase_core::parser::parse_program;
use chase_core::vocab::Vocabulary;
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{Budget, Outcome, RestrictedChase, Strategy};
use chase_termination::{decide, DeciderConfig, TerminationVerdict};
use chase_workloads::suite::{labelled_suite, Expected};
use tgd_classes::profile::ClassProfile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("chasectl: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> String {
    "usage: chasectl <classify|chase|oblivious|decide|dot|suite> [<file>] [options]\n\
     options: --steps N   --strategy fifo|lifo|random|priority   --semi"
        .to_string()
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "suite" => cmd_suite(),
        "classify" | "chase" | "oblivious" | "decide" | "dot" => {
            let path = args.get(1).ok_or_else(usage)?;
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let mut vocab = Vocabulary::new();
            let program = parse_program(&src, &mut vocab).map_err(|e| e.to_string())?;
            let set = program.tgd_set(&vocab).map_err(|e| e.to_string())?;
            let steps = flag_value(args, "--steps")
                .map(|s| s.parse::<usize>().map_err(|e| e.to_string()))
                .transpose()?
                .unwrap_or(10_000);
            match command.as_str() {
                "classify" => cmd_classify(&set, &vocab),
                "chase" => {
                    let strategy = match flag_value(args, "--strategy").as_deref() {
                        None | Some("fifo") => Strategy::Fifo,
                        Some("lifo") => Strategy::Lifo,
                        Some("random") => Strategy::Random(0xC0FFEE),
                        Some("priority") => Strategy::PriorityTgd,
                        Some(other) => return Err(format!("unknown strategy '{other}'")),
                    };
                    cmd_chase(&program.database, &set, &vocab, strategy, steps)
                }
                "oblivious" => cmd_oblivious(
                    &program.database,
                    &set,
                    &vocab,
                    args.iter().any(|a| a == "--semi"),
                    steps,
                ),
                "decide" => cmd_decide(&set, &vocab),
                "dot" => cmd_dot(&program.database, &set, &vocab, steps),
                _ => unreachable!(),
            }
        }
        other => Err(format!("unknown command '{other}'\n{}", usage())),
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn cmd_classify(set: &chase_core::tgd::TgdSet, vocab: &Vocabulary) -> Result<(), String> {
    let profile = ClassProfile::analyse(set, vocab, Budget::steps(20_000));
    println!("rules: {}", set.len());
    println!(
        "schema: {} predicates, max arity {}",
        set.schema_preds().len(),
        set.max_arity()
    );
    println!("profile: {}", profile.summary());
    println!(
        "decidable fragment (single-head guarded or sticky): {}",
        profile.in_decidable_fragment()
    );
    Ok(())
}

fn cmd_chase(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    strategy: Strategy,
    steps: usize,
) -> Result<(), String> {
    let run = RestrictedChase::new(set)
        .strategy(strategy)
        .run(db, Budget::steps(steps));
    println!(
        "restricted chase ({strategy:?}): {} after {} steps, {} atoms",
        match run.outcome {
            Outcome::Terminated => "terminated",
            Outcome::BudgetExhausted => "budget exhausted",
        },
        run.steps,
        run.instance.len()
    );
    if run.instance.len() <= 50 {
        println!("{}", run.instance.display(vocab));
    }
    Ok(())
}

fn cmd_oblivious(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    semi: bool,
    steps: usize,
) -> Result<(), String> {
    let engine = if semi {
        ObliviousChase::new(set).semi_oblivious()
    } else {
        ObliviousChase::new(set)
    };
    let run = engine.run(db, Budget::steps(steps));
    println!(
        "{} chase: {} after {} steps, {} atoms",
        if semi { "semi-oblivious" } else { "oblivious" },
        match run.outcome {
            Outcome::Terminated => "terminated",
            Outcome::BudgetExhausted => "budget exhausted",
        },
        run.steps,
        run.instance.len()
    );
    if run.instance.len() <= 50 {
        println!("{}", run.instance.display(vocab));
    }
    Ok(())
}

fn cmd_decide(set: &chase_core::tgd::TgdSet, vocab: &Vocabulary) -> Result<(), String> {
    let verdict = decide(set, vocab, &DeciderConfig::default());
    let profile = ClassProfile::analyse(set, vocab, Budget::steps(20_000));
    print!(
        "{}",
        chase_termination::report::explain(&verdict, set, vocab, Some(&profile))
    );
    Ok(())
}

fn cmd_dot(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    steps: usize,
) -> Result<(), String> {
    let run = RestrictedChase::new(set)
        .strategy(Strategy::Fifo)
        .run(db, Budget::steps(steps.min(200)));
    print!(
        "{}",
        chase_engine::dot::derivation_to_dot(&run.derivation, set, vocab)
    );
    Ok(())
}

fn cmd_suite() -> Result<(), String> {
    let config = DeciderConfig::default();
    let mut correct = 0usize;
    let mut total = 0usize;
    println!("{:<34} {:>15} {:>16} agree", "entry", "expected", "verdict");
    for entry in labelled_suite() {
        let (vocab, set) = entry.build();
        let verdict = decide(&set, &vocab, &config);
        let verdict_str = match &verdict {
            TerminationVerdict::AllInstancesTerminating(_) => "terminating",
            TerminationVerdict::NonTerminating(_) => "non-terminating",
            TerminationVerdict::Unknown { .. } => "unknown",
        };
        let expected_str = match entry.expected {
            Expected::Terminating => "terminating",
            Expected::NonTerminating => "non-terminating",
        };
        let agree = verdict_str == expected_str;
        total += 1;
        if agree {
            correct += 1;
        }
        println!(
            "{:<34} {:>15} {:>16} {}",
            entry.name,
            expected_str,
            verdict_str,
            if agree { "yes" } else { "NO" }
        );
    }
    println!("---\n{correct}/{total} correct");
    if correct == total {
        Ok(())
    } else {
        Err("suite disagreement".into())
    }
}
