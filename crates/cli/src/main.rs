//! `chasectl` — command-line front end for the restricted-chase
//! toolkit.
//!
//! ```text
//! chasectl classify <file>          structural class profile
//! chasectl chase <file> [--steps N] [--strategy fifo|lifo|random|priority] [--seed N] [--threads N]
//! chasectl oblivious <file> [--steps N] [--semi] [--threads N]
//! chasectl decide <file>            all-instances termination verdict
//! chasectl profile <file>           profiled run: span/memory report + overhead gate
//! chasectl dot <file> [--steps N]   chase, then emit the derivation as graphviz
//! chasectl suite [--metrics]        run the deciders over the labelled suite
//! chasectl stats <path>...          aggregate --trace files into a counter table
//! chasectl serve --socket E         resident chase server on unix:PATH or tcp:HOST:PORT
//! chasectl client E <op> [<file>]   submit ping|shutdown|cancel|chase|decide to a server
//!                                   (chase/decide take --program-ref <fp> to reuse a
//!                                   cached program; shutdown takes --abort)
//! ```
//!
//! `chase`, `oblivious` and `decide` additionally accept the telemetry
//! flags `--trace <file.jsonl>` (stream every event as JSON Lines),
//! `--metrics` (print a counter/phase table after the run) and
//! `--profile` (include the span/memory/heartbeat profiling stream in
//! those sinks), plus the resilience flags `--deadline-ms <N>`
//! (wall-clock deadline) and — for the chase commands —
//! `--cancel-after <N>` (cooperative cancellation after N steps,
//! exercising the same path a signal handler would).
//!
//! `stats` merges any number of trace files (a directory expands to
//! its `*.jsonl` children) and understands the profiling events;
//! `stats --follow <file>` tails a growing trace live, with
//! `--idle-exit-ms <N>` to stop once the producer goes quiet.
//!
//! `serve` and `client` are the resident-server pair (DESIGN.md §17):
//! `serve` keeps warm worker pools across requests and multiplexes
//! concurrent, governed sessions; `client` submits one session,
//! relays its telemetry (`--telemetry`) and retries `overloaded`
//! sheds with exponential backoff (`--retries N`).
//!
//! ## Exit codes
//!
//! | code | meaning                                                |
//! |------|--------------------------------------------------------|
//! | 0    | success (including a decider's honest `Unknown`)       |
//! | 1    | runtime failure (I/O, parse error, suite disagreement) |
//! | 2    | usage error (unknown command/flag, malformed value)    |
//! | 3    | chase stopped: budget exhausted                        |
//! | 4    | stopped: wall-clock deadline exceeded                  |
//! | 5    | stopped: cancelled                                     |
//! | 6    | server overloaded after every client retry             |
//!
//! Rule files contain TGDs and facts in the syntax of DESIGN.md §5.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::time::Duration;

use chase_core::compile::compile;
use chase_core::vocab::Vocabulary;
use chase_engine::driver::Parallelism;
use chase_engine::faults::FaultPlan;
use chase_engine::governor::ResourceGovernor;
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{Budget, Outcome, RestrictedChase, Strategy};
use chase_telemetry::summary::format_nanos;
use chase_telemetry::{
    time_phase, ChaseObserver, CountingObserver, Event, JsonlWriter, TelemetrySummary,
};
use chase_termination::{decide_observed, DeciderConfig, TerminationVerdict};
use chase_workloads::runner::run_labelled_suite;
use tgd_classes::profile::ClassProfile;

mod profile;
mod serve;
mod stats;

/// Counts every allocation (and reallocation) into
/// [`chase_telemetry::alloc_track`], where the engines' profiling
/// memory samples pick it up. The counter is a single relaxed atomic
/// increment, so the allocator stays wait-free; `chase-telemetry`
/// itself is `forbid(unsafe_code)`, which is why the `GlobalAlloc`
/// shim lives here in the binary.
struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the extra work is one
// relaxed atomic add, which cannot allocate, unwind or alias.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        chase_telemetry::alloc_track::note(1);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        chase_telemetry::alloc_track::note(1);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        chase_telemetry::alloc_track::note(1);
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Default RNG seed for `--strategy random` (overridable via `--seed`).
const DEFAULT_RANDOM_SEED: u64 = 0xC0FFEE;

/// Step cap applied to `chasectl dot` when no `--steps` is given; an
/// explicit `--steps` is always honoured verbatim.
const DEFAULT_DOT_STEPS: usize = 200;

/// Exit codes (documented in the module header and `usage`).
const EXIT_FAILURE: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_BUDGET: u8 = 3;
const EXIT_DEADLINE: u8 = 4;
const EXIT_CANCELLED: u8 = 5;
const EXIT_OVERLOADED: u8 = 6;

/// A CLI failure, split by who got it wrong: `Usage` is the caller's
/// command line (exit code 2, with a usage hint); `Runtime` is
/// everything else (exit code 1).
#[derive(Debug)]
enum CliError {
    Usage(String),
    Runtime(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Runtime(msg)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(CliError::Usage(msg)) => {
            eprintln!("chasectl: {msg}");
            eprintln!("{}", usage_hint());
            ExitCode::from(EXIT_USAGE)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("chasectl: {msg}");
            ExitCode::from(EXIT_FAILURE)
        }
    }
}

/// The one-line hint appended to every usage error.
fn usage_hint() -> String {
    "usage: chasectl <classify|chase|oblivious|decide|profile|dot|suite|stats|serve|client> \
     [<file>] [options] (run 'chasectl help' for details)"
        .to_string()
}

fn usage() -> String {
    "usage: chasectl <classify|chase|oblivious|decide|profile|dot|suite|stats|serve|client> \
     [<file>] [options]\n\
     options: --steps N     --strategy fifo|lifo|random|priority   --semi\n\
     \u{20}        --seed N      RNG seed for --strategy random (default 0xC0FFEE)\n\
     \u{20}        --trace F     write one JSON event per line to F (chase|oblivious|decide|profile)\n\
     \u{20}        --metrics     print counter/phase table (chase|oblivious|decide|suite)\n\
     \u{20}        --profile     include the span/memory profiling stream (chase|oblivious|decide)\n\
     \u{20}        --deadline-ms N  wall-clock deadline (chase|oblivious|decide)\n\
     \u{20}        --cancel-after N cancel after N chase steps (chase|oblivious)\n\
     \u{20}        --threads N   worker cap for the parallel driver (chase|oblivious|profile)\n\
     profile: --runs N --heartbeat-every N --sample-every N --json F --folded F\n\
     \u{20}        --max-overhead PCT (spans are 1-in-64 sampled by default; --sample-every 1 = exhaustive)\n\
     \u{20}        (plus --steps/--strategy/--seed/--trace; --oblivious [--semi] switches engine)\n\
     stats:   <path>... (files or directories of .jsonl traces, merged)\n\
     \u{20}        --follow      tail one growing trace live, printing heartbeats\n\
     \u{20}        --idle-exit-ms N  with --follow: exit after N ms without new events\n\
     serve:   --socket unix:PATH|tcp:HOST:PORT  (required)\n\
     \u{20}        --runners N --tenant-queue-cap N --global-queue-cap N --retry-after-ms N\n\
     client:  <endpoint> ping|shutdown|cancel|chase|decide [<file>]\n\
     \u{20}        cancel: --id S;  chase/decide: --id S --tenant S --deadline-ms N\n\
     \u{20}        --telemetry (relay event lines) --retries N (overload backoff)\n\
     \u{20}        chase also: --strategy --seed --steps --max-atoms --threads\n\
     exit codes: 0 ok, 1 runtime error, 2 usage error, 3 budget exhausted,\n\
     \u{20}           4 deadline exceeded, 5 cancelled, 6 server overloaded"
        .to_string()
}

/// Rejects any `--flag` not in the command's vocabulary, so a typo
/// fails fast (exit code 2) instead of being silently ignored.
/// `value_flags` consume the following argument; `switch_flags` stand
/// alone.
fn check_flags(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<(), CliError> {
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        if arg.starts_with("--") {
            if value_flags.contains(&arg) {
                i += 2; // skip the value ("flag without value" is caught by flag_value
                continue;
            }
            if switch_flags.contains(&arg) {
                i += 1;
                continue;
            }
            return Err(CliError::Usage(format!("unknown option '{arg}'")));
        }
        i += 1;
    }
    Ok(())
}

fn run(args: &[String]) -> Result<ExitCode, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".into()));
    };
    match command.as_str() {
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(ExitCode::SUCCESS)
        }
        "suite" => {
            check_flags(&args[1..], &[], &["--metrics"])?;
            cmd_suite(args.iter().any(|a| a == "--metrics"))?;
            Ok(ExitCode::SUCCESS)
        }
        "serve" => serve::cmd_serve(&args[1..]),
        "client" => serve::cmd_client(&args[1..]),
        "stats" => {
            check_flags(&args[1..], &["--idle-exit-ms"], &["--follow"])?;
            let follow = args.iter().any(|a| a == "--follow");
            let idle_exit_ms = flag_value(args, "--idle-exit-ms")?
                .map(|s| {
                    s.parse::<u64>()
                        .map_err(|e| CliError::Usage(format!("invalid --idle-exit-ms '{s}': {e}")))
                })
                .transpose()?;
            if idle_exit_ms.is_some() && !follow {
                return Err(CliError::Usage(
                    "--idle-exit-ms only makes sense with --follow".into(),
                ));
            }
            // Positional operands: every non-flag argument that is not
            // the value of --idle-exit-ms.
            let mut paths = Vec::new();
            let mut i = 1;
            while i < args.len() {
                match args[i].as_str() {
                    "--idle-exit-ms" => i += 2,
                    "--follow" => i += 1,
                    p => {
                        paths.push(p.to_string());
                        i += 1;
                    }
                }
            }
            if paths.is_empty() {
                return Err(CliError::Usage(
                    "stats requires at least one <trace.jsonl> file or directory".into(),
                ));
            }
            if follow {
                let [path] = paths.as_slice() else {
                    return Err(CliError::Usage(
                        "stats --follow takes exactly one trace file".into(),
                    ));
                };
                stats::cmd_stats_follow(path, idle_exit_ms)?;
            } else {
                stats::cmd_stats(&paths)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        "classify" | "chase" | "oblivious" | "decide" | "profile" | "dot" => {
            let path = args
                .get(1)
                .ok_or_else(|| CliError::Usage(format!("{command} requires a rule <file>")))?;
            let rest = &args[2..];
            match command.as_str() {
                "classify" => check_flags(rest, &[], &[])?,
                "chase" => check_flags(
                    rest,
                    &[
                        "--steps",
                        "--strategy",
                        "--seed",
                        "--threads",
                        "--trace",
                        "--deadline-ms",
                        "--cancel-after",
                    ],
                    &["--metrics", "--profile"],
                )?,
                "oblivious" => check_flags(
                    rest,
                    &[
                        "--steps",
                        "--threads",
                        "--trace",
                        "--deadline-ms",
                        "--cancel-after",
                    ],
                    &["--semi", "--metrics", "--profile"],
                )?,
                "decide" => check_flags(
                    rest,
                    &["--trace", "--deadline-ms"],
                    &["--metrics", "--profile"],
                )?,
                "profile" => check_flags(
                    rest,
                    &[
                        "--steps",
                        "--strategy",
                        "--seed",
                        "--threads",
                        "--runs",
                        "--heartbeat-every",
                        "--sample-every",
                        "--json",
                        "--folded",
                        "--trace",
                        "--max-overhead",
                    ],
                    &["--oblivious", "--semi"],
                )?,
                "dot" => check_flags(rest, &["--steps"], &[])?,
                _ => unreachable!(),
            }
            let src =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            // One compile() call replaces the parse → vocab → tgd_set
            // boilerplate; the same bundle the server caches.
            let compiled = compile(&src).map_err(|e| e.to_string())?;
            let (set, vocab) = (compiled.tgd_set(), compiled.vocab());
            let steps_flag = flag_value(args, "--steps")?
                .map(|s| {
                    s.parse::<usize>()
                        .map_err(|e| CliError::Usage(format!("invalid --steps '{s}': {e}")))
                })
                .transpose()?;
            let steps = steps_flag.unwrap_or(10_000);
            match command.as_str() {
                "classify" => {
                    cmd_classify(set, vocab)?;
                    Ok(ExitCode::SUCCESS)
                }
                "chase" => {
                    let seed = match flag_value(args, "--seed")? {
                        Some(s) => Some(parse_seed(&s)?),
                        None => None,
                    };
                    let strategy = match flag_value(args, "--strategy")?.as_deref() {
                        None | Some("fifo") => Strategy::Fifo,
                        Some("lifo") => Strategy::Lifo,
                        Some("random") => Strategy::Random(seed.unwrap_or(DEFAULT_RANDOM_SEED)),
                        Some("priority") => Strategy::PriorityTgd,
                        Some(other) => {
                            return Err(CliError::Usage(format!("unknown strategy '{other}'")))
                        }
                    };
                    if seed.is_some() && !matches!(strategy, Strategy::Random(_)) {
                        eprintln!("chasectl: note: --seed only affects --strategy random");
                    }
                    let gov = governor_from_flags(args, steps)?;
                    let threads = threads_from_flags(args)?;
                    let mut telemetry = CliTelemetry::from_args(args)?;
                    let outcome = cmd_chase(
                        compiled.database(),
                        set,
                        vocab,
                        strategy,
                        threads,
                        &gov,
                        &mut telemetry,
                    )?;
                    telemetry.finish(true)?;
                    Ok(ExitCode::from(outcome_exit(outcome)))
                }
                "oblivious" => {
                    let gov = governor_from_flags(args, steps)?;
                    let threads = threads_from_flags(args)?;
                    let mut telemetry = CliTelemetry::from_args(args)?;
                    let outcome = cmd_oblivious(
                        compiled.database(),
                        set,
                        vocab,
                        args.iter().any(|a| a == "--semi"),
                        threads,
                        &gov,
                        &mut telemetry,
                    )?;
                    telemetry.finish(true)?;
                    Ok(ExitCode::from(outcome_exit(outcome)))
                }
                "decide" => {
                    let config = DeciderConfig {
                        deadline: deadline_from_flags(args)?,
                        ..DeciderConfig::default()
                    };
                    let mut telemetry = CliTelemetry::from_args(args)?;
                    let verdict = cmd_decide(set, vocab, &config, &mut telemetry)?;
                    // `explain` already embedded the metrics table.
                    telemetry.finish(false)?;
                    Ok(ExitCode::from(verdict_exit(&verdict)))
                }
                "profile" => {
                    let seed = match flag_value(args, "--seed")? {
                        Some(s) => Some(parse_seed(&s)?),
                        None => None,
                    };
                    let strategy = match flag_value(args, "--strategy")?.as_deref() {
                        None | Some("fifo") => Strategy::Fifo,
                        Some("lifo") => Strategy::Lifo,
                        Some("random") => Strategy::Random(seed.unwrap_or(DEFAULT_RANDOM_SEED)),
                        Some("priority") => Strategy::PriorityTgd,
                        Some(other) => {
                            return Err(CliError::Usage(format!("unknown strategy '{other}'")))
                        }
                    };
                    let parse_u64 = |flag: &str| -> Result<Option<u64>, CliError> {
                        flag_value(args, flag)?
                            .map(|s| {
                                s.parse::<u64>().map_err(|e| {
                                    CliError::Usage(format!("invalid {flag} '{s}': {e}"))
                                })
                            })
                            .transpose()
                    };
                    let defaults = profile::ProfileOptions::default();
                    let opts = profile::ProfileOptions {
                        steps,
                        strategy,
                        oblivious: args.iter().any(|a| a == "--oblivious"),
                        semi: args.iter().any(|a| a == "--semi"),
                        threads: threads_from_flags(args)?,
                        runs: parse_u64("--runs")?
                            .map(|n| n as usize)
                            .unwrap_or(defaults.runs),
                        heartbeat_every: parse_u64("--heartbeat-every")?
                            .unwrap_or(defaults.heartbeat_every),
                        sample_every: parse_u64("--sample-every")?,
                        json: flag_value(args, "--json")?,
                        folded: flag_value(args, "--folded")?,
                        trace: flag_value(args, "--trace")?,
                        max_overhead_pct: parse_u64("--max-overhead")?,
                    };
                    if opts.semi && !opts.oblivious {
                        return Err(CliError::Usage(
                            "--semi requires --oblivious (the restricted chase has no \
                             semi-oblivious variant)"
                                .into(),
                        ));
                    }
                    profile::cmd_profile(compiled.database(), set, vocab, &opts)?;
                    Ok(ExitCode::SUCCESS)
                }
                "dot" => {
                    cmd_dot(compiled.database(), set, vocab, steps_flag)?;
                    Ok(ExitCode::SUCCESS)
                }
                _ => unreachable!(),
            }
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

/// Looks up `flag`'s value. A flag present without a following value
/// is an error, not a silent fallback to the default.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, CliError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) => Ok(Some(v.clone())),
            None => Err(CliError::Usage(format!("{flag} requires a value"))),
        },
    }
}

/// Hard ceiling on `--threads`: the instance layer shards work across
/// at most [`chase_core::instance::MAX_SHARD_COUNT`] shards, so
/// workers beyond that can never be scheduled — a larger request is a
/// typo, not a tuning choice.
const MAX_THREADS: usize = chase_core::instance::MAX_SHARD_COUNT;

/// Parses `--threads N` into a worker cap for the engines' parallel
/// driver, if present. `1 <= N <= MAX_THREADS`; 1 keeps everything on
/// the calling thread (the parallel driver's single-worker path is the
/// sequential enumeration), larger values cap the persistent pool.
fn threads_from_flags(args: &[String]) -> Result<Option<usize>, CliError> {
    flag_value(args, "--threads")?
        .map(|s| match s.parse::<usize>() {
            Ok(0) => Err(CliError::Usage(
                "--threads must be at least 1 (1 = sequential)".into(),
            )),
            Ok(n) if n > MAX_THREADS => Err(CliError::Usage(format!(
                "--threads must be at most {MAX_THREADS} (got {n})"
            ))),
            Ok(n) => Ok(n),
            Err(e) => Err(CliError::Usage(format!("invalid --threads '{s}': {e}"))),
        })
        .transpose()
}

/// Parses a `--seed` value, accepting decimal or `0x`-prefixed hex.
fn parse_seed(s: &str) -> Result<u64, CliError> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse::<u64>(),
    };
    parsed.map_err(|e| CliError::Usage(format!("invalid --seed '{s}': {e}")))
}

/// Parses `--deadline-ms` into a [`Duration`], if present.
fn deadline_from_flags(args: &[String]) -> Result<Option<Duration>, CliError> {
    flag_value(args, "--deadline-ms")?
        .map(|s| {
            s.parse::<u64>()
                .map(Duration::from_millis)
                .map_err(|e| CliError::Usage(format!("invalid --deadline-ms '{s}': {e}")))
        })
        .transpose()
}

/// Builds the chase governor from `--deadline-ms` / `--cancel-after`
/// plus the step budget. `--cancel-after` rides on the deterministic
/// fault plan: it trips the governor's own cancellation token at the
/// requested step, exactly as an external canceller would.
fn governor_from_flags(args: &[String], steps: usize) -> Result<ResourceGovernor, CliError> {
    let mut gov = ResourceGovernor::from_budget(Budget::steps(steps));
    if let Some(deadline) = deadline_from_flags(args)? {
        gov = gov.with_deadline_in(deadline);
    }
    if let Some(s) = flag_value(args, "--cancel-after")? {
        let after = s
            .parse::<usize>()
            .map_err(|e| CliError::Usage(format!("invalid --cancel-after '{s}': {e}")))?;
        gov = gov.with_faults(FaultPlan {
            cancel_at_step: Some(after),
            ..FaultPlan::default()
        });
    }
    Ok(gov)
}

/// Human-readable label for a chase outcome.
fn outcome_label(outcome: Outcome) -> &'static str {
    match outcome {
        Outcome::Terminated => "terminated",
        Outcome::BudgetExhausted => "budget exhausted",
        Outcome::DeadlineExceeded => "deadline exceeded",
        Outcome::Cancelled => "cancelled",
    }
}

/// The exit code a chase outcome maps to (module-header table).
fn outcome_exit(outcome: Outcome) -> u8 {
    match outcome {
        Outcome::Terminated => 0,
        Outcome::BudgetExhausted => EXIT_BUDGET,
        Outcome::DeadlineExceeded => EXIT_DEADLINE,
        Outcome::Cancelled => EXIT_CANCELLED,
    }
}

/// The exit code a decider verdict maps to: deadline/cancellation
/// `Unknown`s get the same distinct codes as interrupted chases; every
/// genuine verdict (including other honest `Unknown`s) is success.
fn verdict_exit(verdict: &TerminationVerdict) -> u8 {
    match verdict {
        TerminationVerdict::Unknown { reason } if reason.starts_with("deadline exceeded") => {
            EXIT_DEADLINE
        }
        TerminationVerdict::Unknown { reason } if reason.starts_with("cancelled") => EXIT_CANCELLED,
        _ => 0,
    }
}

/// The telemetry sinks requested on the command line: an optional
/// `--trace <file.jsonl>` JSON Lines stream and an optional
/// `--metrics` counter aggregation. Implements [`ChaseObserver`] by
/// fanning each event out to whichever sinks are present; with
/// neither flag it reports `enabled() == false` and the engines skip
/// event construction entirely. `--profile` additionally opts the
/// sinks into the engines' profiling stream (spans, memory samples,
/// heartbeats).
struct CliTelemetry {
    trace: Option<(String, JsonlWriter<BufWriter<File>>)>,
    metrics: Option<CountingObserver>,
    profiling: bool,
}

impl CliTelemetry {
    fn from_args(args: &[String]) -> Result<Self, CliError> {
        let trace = match flag_value(args, "--trace")? {
            Some(path) => {
                let file = File::create(&path).map_err(|e| format!("cannot create {path}: {e}"))?;
                Some((path, JsonlWriter::new(BufWriter::new(file))))
            }
            None => None,
        };
        let metrics = args
            .iter()
            .any(|a| a == "--metrics")
            .then(CountingObserver::new);
        let profiling = args.iter().any(|a| a == "--profile");
        if profiling && trace.is_none() && metrics.is_none() {
            eprintln!(
                "chasectl: note: --profile has no visible effect without --trace or --metrics"
            );
        }
        Ok(CliTelemetry {
            trace,
            metrics,
            profiling,
        })
    }

    /// The metrics aggregation so far, if `--metrics` was given.
    fn summary(&self) -> Option<TelemetrySummary> {
        self.metrics.as_ref().map(CountingObserver::summary)
    }

    /// Closes the trace file and, when `print_metrics`, renders the
    /// `--metrics` table to stdout. Dropped trace events (sink write
    /// failures) are a warning, not an error — the run they observed
    /// completed fine; only a failing final flush is fatal.
    fn finish(self, print_metrics: bool) -> Result<(), CliError> {
        if let Some((path, writer)) = self.trace {
            let events = writer.events_written();
            let dropped = writer.io_errors();
            let first_error = writer.first_error().map(|e| e.to_string());
            writer
                .finish()
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("chasectl: trace: {events} event(s) written to {path}");
            if dropped > 0 {
                eprintln!(
                    "chasectl: trace: warning: {dropped} event(s) dropped ({})",
                    first_error.unwrap_or_else(|| "unknown write error".into())
                );
            }
        }
        if print_metrics {
            if let Some(metrics) = self.metrics {
                println!("telemetry:");
                print!("{}", metrics.summary().render_table());
            }
        }
        Ok(())
    }
}

impl ChaseObserver for CliTelemetry {
    fn enabled(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }

    fn profiling(&self) -> bool {
        self.profiling
    }

    fn on_event(&mut self, event: &Event) {
        if let Some((_, writer)) = self.trace.as_mut() {
            writer.on_event(event);
        }
        if let Some(metrics) = self.metrics.as_mut() {
            metrics.on_event(event);
        }
    }
}

fn cmd_classify(set: &chase_core::tgd::TgdSet, vocab: &Vocabulary) -> Result<(), String> {
    let profile = ClassProfile::analyse(set, vocab, Budget::steps(20_000));
    println!("rules: {}", set.len());
    println!(
        "schema: {} predicates, max arity {}",
        set.schema_preds().len(),
        set.max_arity()
    );
    println!("profile: {}", profile.summary());
    println!(
        "decidable fragment (single-head guarded or sticky): {}",
        profile.in_decidable_fragment()
    );
    Ok(())
}

fn cmd_chase(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    strategy: Strategy,
    threads: Option<usize>,
    gov: &ResourceGovernor,
    telemetry: &mut CliTelemetry,
) -> Result<Outcome, String> {
    let run = time_phase(telemetry, "chase", |obs| {
        let mut engine = RestrictedChase::new(set).strategy(strategy);
        if let Some(n) = threads {
            engine = engine.parallelism(Parallelism::On).workers(n);
        }
        engine.run_governed_observed(db, gov, obs)
    });
    println!(
        "restricted chase ({strategy:?}): {} after {} steps, {} atoms",
        outcome_label(run.outcome),
        run.steps,
        run.instance.len()
    );
    if run.instance.len() <= 50 {
        println!("{}", run.instance.display(vocab));
    }
    Ok(run.outcome)
}

fn cmd_oblivious(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    semi: bool,
    threads: Option<usize>,
    gov: &ResourceGovernor,
    telemetry: &mut CliTelemetry,
) -> Result<Outcome, String> {
    let mut engine = if semi {
        ObliviousChase::new(set).semi_oblivious()
    } else {
        ObliviousChase::new(set)
    };
    if let Some(n) = threads {
        engine = engine.parallelism(Parallelism::On).workers(n);
    }
    let run = time_phase(telemetry, "chase", |obs| {
        engine.run_governed_observed(db, gov, obs)
    });
    println!(
        "{} chase: {} after {} steps, {} atoms",
        if semi { "semi-oblivious" } else { "oblivious" },
        outcome_label(run.outcome),
        run.steps,
        run.instance.len()
    );
    if run.instance.len() <= 50 {
        println!("{}", run.instance.display(vocab));
    }
    Ok(run.outcome)
}

fn cmd_decide(
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    config: &DeciderConfig,
    telemetry: &mut CliTelemetry,
) -> Result<TerminationVerdict, String> {
    let verdict = decide_observed(set, vocab, config, telemetry);
    let profile = ClassProfile::analyse(set, vocab, Budget::steps(20_000));
    let summary = telemetry.summary();
    print!(
        "{}",
        chase_termination::report::explain(&verdict, set, vocab, Some(&profile), summary.as_ref())
    );
    Ok(verdict)
}

fn cmd_dot(
    db: &chase_core::instance::Instance,
    set: &chase_core::tgd::TgdSet,
    vocab: &Vocabulary,
    steps_flag: Option<usize>,
) -> Result<(), String> {
    // An explicit --steps is honoured verbatim; only the default
    // budget is capped (graph output for huge derivations is rarely
    // what anyone wants by accident).
    let steps = match steps_flag {
        Some(explicit) => explicit,
        None => {
            eprintln!(
                "chasectl dot: no --steps given; capping the derivation at {DEFAULT_DOT_STEPS} \
                 steps (pass --steps N to override)"
            );
            DEFAULT_DOT_STEPS
        }
    };
    let run = RestrictedChase::new(set)
        .strategy(Strategy::Fifo)
        .run(db, Budget::steps(steps));
    print!(
        "{}",
        chase_engine::dot::derivation_to_dot(&run.derivation, set, vocab)
    );
    Ok(())
}

fn cmd_suite(metrics: bool) -> Result<(), String> {
    let run = run_labelled_suite(&DeciderConfig::default());
    println!(
        "{:<34} {:>15} {:>16} {:>5} {:>10}",
        "entry", "expected", "verdict", "agree", "decide-in"
    );
    for entry in &run.entries {
        println!(
            "{:<34} {:>15} {:>16} {:>5} {:>10}",
            entry.name,
            entry.expected_label(),
            entry.verdict_label(),
            if entry.agrees() { "yes" } else { "NO" },
            format_nanos(entry.nanos)
        );
        if metrics {
            for (phase, nanos) in &entry.telemetry.phases {
                println!("    {:<30} {:>10}", phase, format_nanos(*nanos));
            }
        }
    }
    println!(
        "---\n{}/{} correct in {}",
        run.correct(),
        run.total(),
        format_nanos(run.total_nanos())
    );
    if metrics {
        println!("aggregate telemetry:");
        print!("{}", run.aggregate_telemetry().render_table());
    }
    if run.correct() == run.total() {
        Ok(())
    } else {
        Err("suite disagreement".into())
    }
}
