//! `chasectl profile` — a profiled chase run with hot-spot
//! attribution, memory accounting and an overhead gate.
//!
//! The command runs the workload twice per repetition — once
//! unprofiled (baseline) and once under a [`SpanObserver`],
//! interleaved — across `--runs` repetitions, and reports:
//!
//! * a span table (count, total, p50/p95/p99/max from log₂
//!   histograms) and per-TGD hot-spot pivot;
//! * instance memory accounting (atoms, spill, dedup map, indexes)
//!   and allocation counts from the final memory sample;
//! * profiling overhead as the median of per-repetition paired
//!   ratios (robust against machine noise, which inflates both
//!   halves of the pair it lands on), gated by `--max-overhead
//!   <pct>` (exit 1 when exceeded — `scripts/check.sh` uses this as
//!   its smoke gate);
//! * optionally a flat-JSON report (`--json`, itself a valid
//!   single-line trace that `chasectl stats` parses), a collapsed
//!   flamegraph dump (`--folded`) and a full profiling trace
//!   (`--trace`).
//!
//! Profiling never perturbs the derivation: the command asserts the
//! baseline and profiled instances are bit-identical.
//!
//! Step spans are 1-in-64 *sampled* by default (deterministic in the
//! pop index; trigger fire counts stay exact) so the overhead gate
//! holds even on workloads whose steps are sub-microsecond;
//! `--sample-every 1` switches to exhaustive spans when fidelity
//! matters more than overhead.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::time::Instant;

use chase_core::instance::Instance;
use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;
use chase_engine::driver::Parallelism;
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{Budget, Outcome, RestrictedChase, Strategy};
use chase_engine::DEFAULT_PROFILE_SAMPLE_EVERY;
use chase_telemetry::{
    ChaseObserver, EngineKind, JsonlWriter, SpanObserver, SpanProfile, Tee, SCHEMA_VERSION,
};

/// Everything `chasectl profile` parsed off the command line.
pub struct ProfileOptions {
    /// Step budget per run.
    pub steps: usize,
    /// Queue discipline (restricted engine only).
    pub strategy: Strategy,
    /// Profile the oblivious chase instead of the restricted one.
    pub oblivious: bool,
    /// With `oblivious`: the semi-oblivious variant.
    pub semi: bool,
    /// Timing repetitions; the minimum is reported (default 3).
    pub runs: usize,
    /// Periodic sample cadence in steps. Each sample walks the whole
    /// instance (`memory_footprint` is O(atoms + index entries)), so
    /// the default is coarse enough that sampling stays a rounding
    /// error in the overhead gate while still streaming progress
    /// several times a second on dense workloads.
    pub heartbeat_every: u64,
    /// Step-span sampling cadence: 1 in this many queue pops gets a
    /// full span subtree (`None` = the engine default, 64; `1` spans
    /// every pop, at higher overhead).
    pub sample_every: Option<u64>,
    /// Write the flat-JSON report here.
    pub json: Option<String>,
    /// Write collapsed (flamegraph) stacks here.
    pub folded: Option<String>,
    /// Write the full profiling event stream here.
    pub trace: Option<String>,
    /// Fail (exit 1) when profiling overhead exceeds this percentage.
    pub max_overhead_pct: Option<u64>,
    /// Worker cap for the parallel driver (`None` leaves the engines
    /// sequential; `Some(1)` exercises the parallel path on one
    /// worker, which the engines collapse back to the inline driver).
    pub threads: Option<usize>,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            steps: 10_000,
            strategy: Strategy::Fifo,
            oblivious: false,
            semi: false,
            runs: 3,
            heartbeat_every: 8192,
            sample_every: None,
            json: None,
            folded: None,
            trace: None,
            max_overhead_pct: None,
            threads: None,
        }
    }
}

/// One measured run: outcome, steps, final instance, wall nanos.
struct Measured {
    outcome: Outcome,
    steps: usize,
    instance: Instance,
    nanos: u64,
}

fn run_once<O: ChaseObserver + ?Sized>(
    opts: &ProfileOptions,
    db: &Instance,
    set: &TgdSet,
    obs: &mut O,
) -> Measured {
    let budget = Budget::steps(opts.steps);
    let start = Instant::now();
    let sample_every = opts.sample_every.unwrap_or(DEFAULT_PROFILE_SAMPLE_EVERY);
    let (outcome, steps, instance) = if opts.oblivious {
        let mut engine = ObliviousChase::new(set)
            .heartbeat_every(opts.heartbeat_every)
            .profile_sample_every(sample_every);
        if opts.semi {
            engine = engine.semi_oblivious();
        }
        if let Some(n) = opts.threads {
            engine = engine.parallelism(Parallelism::On).workers(n);
        }
        let run = engine.run_observed(db, budget, obs);
        (run.outcome, run.steps, run.instance)
    } else {
        let mut engine = RestrictedChase::new(set)
            .strategy(opts.strategy)
            .record_derivation(false)
            .heartbeat_every(opts.heartbeat_every)
            .profile_sample_every(sample_every);
        if let Some(n) = opts.threads {
            engine = engine.parallelism(Parallelism::On).workers(n);
        }
        let run = engine.run_observed(db, budget, obs);
        (run.outcome, run.steps, run.instance)
    };
    let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Measured {
        outcome,
        steps,
        instance,
        nanos,
    }
}

/// Overhead of `profiled` over `baseline` in hundredths of a percent,
/// clamped at zero (a profiled run that happens to be faster reads as
/// 0, keeping the JSON report's integers unsigned).
fn overhead_pct_x100(baseline: u64, profiled: u64) -> u64 {
    if profiled <= baseline || baseline == 0 {
        return 0;
    }
    (profiled - baseline).saturating_mul(10_000) / baseline
}

/// The flat-JSON report: one line, scalar values only, starting with
/// the `event`/`v` keys — so the report is itself a valid trace line
/// for `chasectl stats`.
fn report_json(
    engine: EngineKind,
    baseline: &Measured,
    best_profiled_ns: u64,
    runs: usize,
    sample_every: u64,
    overhead_x100: u64,
    profile: &SpanProfile,
) -> String {
    let mut out = String::new();
    out.push_str("{\"event\":\"profile_report\"");
    out.push_str(&format!(",\"v\":{SCHEMA_VERSION}"));
    out.push_str(&format!(",\"engine\":\"{}\"", engine.as_str()));
    out.push_str(&format!(
        ",\"outcome\":\"{}\"",
        crate::outcome_label(baseline.outcome)
    ));
    out.push_str(&format!(",\"steps\":{}", baseline.steps));
    out.push_str(&format!(",\"atoms\":{}", baseline.instance.len()));
    out.push_str(&format!(",\"runs\":{runs}"));
    out.push_str(&format!(",\"sample_every\":{sample_every}"));
    out.push_str(&format!(",\"baseline_ns\":{}", baseline.nanos));
    out.push_str(&format!(",\"profiled_ns\":{best_profiled_ns}"));
    out.push_str(&format!(",\"overhead_pct_x100\":{overhead_x100}"));
    profile.append_flat_json(&mut out);
    out.push('}');
    out
}

/// The `chasectl profile <file>` entry point.
pub fn cmd_profile(
    db: &Instance,
    set: &TgdSet,
    _vocab: &Vocabulary,
    opts: &ProfileOptions,
) -> Result<(), String> {
    let runs = opts.runs.max(1);
    let engine_kind = match (opts.oblivious, opts.semi) {
        (false, _) => EngineKind::Restricted,
        (true, false) => EngineKind::Oblivious,
        (true, true) => EngineKind::SemiOblivious,
    };

    // Warm caches, the allocator and the CPU governor before any
    // timed rep; the result is discarded.
    run_once(opts, db, set, &mut chase_telemetry::NullObserver);

    // Baseline and profiled runs are *interleaved* per rep, with the
    // within-pair order alternating between reps. The reported nanos
    // are each side's minimum wall-clock, but the overhead figure is
    // the **median of per-rep paired ratios**: a noise burst (noisy
    // neighbour, governor dip) inflates both runs of the pair it
    // lands on, so the pair's ratio stays honest, and the median
    // discards the pairs it split. Comparing the two independent
    // minima instead would let a burst that straddles only one side
    // read as fake overhead; alternating the order keeps *periodic*
    // interference from always landing on the same half of a pair.
    //
    // The trace (if any) is written on the first profiled rep only,
    // whose IO cost the median then discards. The reported profile
    // comes from the fastest profiled rep.
    let mut trace = match &opts.trace {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            Some((path.clone(), JsonlWriter::new(BufWriter::new(file))))
        }
        None => None,
    };
    let mut baseline: Option<Measured> = None;
    let mut best: Option<(Measured, SpanObserver)> = None;
    let mut pair_ratios: Vec<u64> = Vec::with_capacity(runs);
    for rep in 0..runs {
        let baseline_first = rep % 2 == 0;
        let run_baseline = |baseline: &mut Option<Measured>| {
            let b = run_once(opts, db, set, &mut chase_telemetry::NullObserver);
            let nanos = b.nanos;
            match &baseline {
                Some(prev) if b.nanos >= prev.nanos => {}
                _ => *baseline = Some(b),
            }
            nanos
        };
        let b_nanos = baseline_first.then(|| run_baseline(&mut baseline));
        let mut obs = SpanObserver::new();
        let m = match (rep, trace.as_mut()) {
            (0, Some((_, writer))) => {
                let mut tee = Tee::new(&mut obs, writer);
                run_once(opts, db, set, &mut tee)
            }
            _ => run_once(opts, db, set, &mut obs),
        };
        let b_nanos = match b_nanos {
            Some(n) => n,
            None => run_baseline(&mut baseline),
        };
        pair_ratios.push(overhead_pct_x100(b_nanos, m.nanos));
        match &best {
            Some((prev, _)) if m.nanos >= prev.nanos => {}
            _ => best = Some((m, obs)),
        }
    }
    let baseline = baseline.expect("runs >= 1");
    let (profiled, span_obs) = best.expect("runs >= 1");
    pair_ratios.sort_unstable();
    let overhead = pair_ratios[pair_ratios.len() / 2];
    if let Some((path, writer)) = trace {
        let events = writer.events_written();
        writer
            .finish()
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("chasectl: trace: {events} event(s) written to {path}");
    }

    // Profiling must be an observer, not a participant.
    if profiled.instance != baseline.instance || profiled.steps != baseline.steps {
        return Err(
            "profiled run diverged from the unprofiled baseline (this is a bug)".to_string(),
        );
    }

    let profile = span_obs.profile();
    println!(
        "profile: {} chase: {} after {} steps, {} atoms",
        engine_kind.as_str(),
        crate::outcome_label(baseline.outcome),
        baseline.steps,
        baseline.instance.len()
    );
    println!(
        "overhead: baseline {} ns, profiled {} ns (+{}.{:02}%, paired median of {} run(s))",
        baseline.nanos,
        profiled.nanos,
        overhead / 100,
        overhead % 100,
        runs
    );
    let sample_every = opts.sample_every.unwrap_or(DEFAULT_PROFILE_SAMPLE_EVERY);
    if sample_every > 1 {
        println!(
            "sampling: 1 in {sample_every} step(s) carries spans (fires are exact; \
             --sample-every 1 for exhaustive spans)"
        );
    }
    print!("{}", profile.render_text());

    if let Some(path) = &opts.json {
        let line = report_json(
            engine_kind,
            &baseline,
            profiled.nanos,
            runs,
            sample_every,
            overhead,
            &profile,
        );
        std::fs::write(path, format!("{line}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("chasectl: profile: JSON report written to {path}");
    }
    if let Some(path) = &opts.folded {
        let mut f =
            BufWriter::new(File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?);
        f.write_all(profile.collapsed().as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("chasectl: profile: collapsed stacks written to {path}");
    }
    if let Some(max) = opts.max_overhead_pct {
        if overhead > max * 100 {
            return Err(format!(
                "profiling overhead {}.{:02}% exceeds the --max-overhead gate of {max}%",
                overhead / 100,
                overhead % 100
            ));
        }
    }
    Ok(())
}
