//! `chasectl serve` and `chasectl client` — the resident chase server
//! (DESIGN.md §17) and its line-protocol client.
//!
//! `serve` binds the endpoint, prints the resolved address on stdout
//! (a `tcp:HOST:0` bind reports the actual port, so wrapper scripts
//! can parse it) and blocks until an in-band `{"op":"shutdown"}`
//! request completes its graceful drain (`shutdown --abort` instead
//! cancels every queued and running session before exiting).
//!
//! `client chase`/`client decide` accept `--program-ref <fingerprint>`
//! to submit by content address instead of shipping rule text; with
//! both a file and a ref, the ref-only line goes first and the full
//! source is resubmitted automatically on an `unknown_program` miss.
//!
//! `client` connects, submits one operation and maps the typed reply
//! onto the CLI's exit-code table: chase outcomes get the same codes
//! as a direct `chasectl chase` run, and an `overloaded` shed that
//! survives every retry is exit code 6 — distinguishable from a
//! runtime failure, so callers can re-queue instead of alerting.

use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use chase_server::client::{request_once, run_session_with_fallback, ClientConfig, ClientError};
use chase_server::protocol::Reply;
use chase_server::scheduler::SchedulerConfig;
use chase_server::server::{Endpoint, Server, ServerConfig};
use chase_telemetry::event::escape_json;
use chase_telemetry::json::Scalar;

use crate::{
    check_flags, flag_value, CliError, EXIT_BUDGET, EXIT_CANCELLED, EXIT_DEADLINE, EXIT_FAILURE,
    EXIT_OVERLOADED,
};

/// Parses an integer-valued flag, if present.
fn num_flag(args: &[String], flag: &str) -> Result<Option<u64>, CliError> {
    flag_value(args, flag)?
        .map(|s| {
            s.parse::<u64>()
                .map_err(|e| CliError::Usage(format!("invalid {flag} '{s}': {e}")))
        })
        .transpose()
}

/// `chasectl serve --socket <endpoint>` plus scheduler knobs.
pub fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    check_flags(
        args,
        &[
            "--socket",
            "--runners",
            "--tenant-queue-cap",
            "--global-queue-cap",
            "--retry-after-ms",
        ],
        &[],
    )?;
    let socket = flag_value(args, "--socket")?.ok_or_else(|| {
        CliError::Usage("serve requires --socket <unix:PATH|tcp:HOST:PORT>".into())
    })?;
    let endpoint = Endpoint::parse(&socket).map_err(CliError::Usage)?;
    let mut scheduler = SchedulerConfig::default();
    if let Some(n) = num_flag(args, "--runners")? {
        if n == 0 {
            return Err(CliError::Usage("--runners must be at least 1".into()));
        }
        scheduler.runners = n as usize;
    }
    if let Some(n) = num_flag(args, "--tenant-queue-cap")? {
        scheduler.tenant_queue_cap = n as usize;
    }
    if let Some(n) = num_flag(args, "--global-queue-cap")? {
        scheduler.global_queue_cap = n as usize;
    }
    if let Some(n) = num_flag(args, "--retry-after-ms")? {
        scheduler.retry_after_ms = n;
    }
    let server = Server::bind(
        &endpoint,
        ServerConfig {
            scheduler,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| CliError::Runtime(format!("cannot bind {endpoint}: {e}")))?;
    println!("chase-server: listening on {}", server.endpoint());
    // Wrapper scripts block on this line before connecting.
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Runtime(format!("cannot flush stdout: {e}")))?;
    server
        .run()
        .map_err(|e| CliError::Runtime(format!("server failed: {e}")))?;
    eprintln!("chase-server: drained, exiting");
    Ok(ExitCode::SUCCESS)
}

/// `chasectl client <endpoint> <ping|shutdown|cancel|chase|decide> ...`
pub fn cmd_client(args: &[String]) -> Result<ExitCode, CliError> {
    let endpoint_str = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| CliError::Usage("client requires an <endpoint> operand".into()))?;
    let endpoint = Endpoint::parse(endpoint_str).map_err(CliError::Usage)?;
    let op = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| {
            CliError::Usage(
                "client requires an operation: ping|shutdown|cancel|chase|decide".into(),
            )
        })?;
    match op.as_str() {
        "ping" => {
            check_flags(&args[2..], &[], &[])?;
            let reply = control(&endpoint, &Reply::request("ping").finish())?;
            println!("{}", render_flat(&reply));
            Ok(ExitCode::SUCCESS)
        }
        "shutdown" => {
            check_flags(&args[2..], &[], &["--abort"])?;
            let mut line = Reply::request("shutdown");
            if args.iter().any(|a| a == "--abort") {
                line = line.str("mode", "abort");
            }
            let reply = control(&endpoint, &line.finish())?;
            println!("{}", render_flat(&reply));
            Ok(ExitCode::SUCCESS)
        }
        "cancel" => {
            check_flags(&args[2..], &["--id"], &[])?;
            let id = flag_value(args, "--id")?
                .ok_or_else(|| CliError::Usage("client cancel requires --id <session>".into()))?;
            let reply = control(&endpoint, &Reply::request("cancel").str("id", &id).finish())?;
            println!("{}", render_flat(&reply));
            let known = reply.get("known").and_then(Scalar::as_str) == Some("true");
            if known {
                Ok(ExitCode::SUCCESS)
            } else {
                eprintln!("chasectl: no live session \"{id}\"");
                Ok(ExitCode::from(EXIT_FAILURE))
            }
        }
        "chase" => cmd_client_chase(&endpoint, args),
        "decide" => cmd_client_decide(&endpoint, args),
        other => Err(CliError::Usage(format!(
            "unknown client operation '{other}'"
        ))),
    }
}

/// Sends one control-plane request (`ping`/`cancel`/`shutdown`).
fn control(endpoint: &Endpoint, line: &str) -> Result<BTreeMap<String, Scalar>, CliError> {
    request_once(endpoint, line).map_err(|e| CliError::Runtime(e.to_string()))
}

fn cmd_client_chase(endpoint: &Endpoint, args: &[String]) -> Result<ExitCode, CliError> {
    let path = args.get(2).filter(|a| !a.starts_with("--"));
    let flags_from = if path.is_some() { 3 } else { 2 };
    check_flags(
        &args[flags_from..],
        &[
            "--id",
            "--tenant",
            "--strategy",
            "--seed",
            "--steps",
            "--max-atoms",
            "--deadline-ms",
            "--threads",
            "--retries",
            "--program-ref",
        ],
        &["--telemetry"],
    )?;
    let program_ref = flag_value(args, "--program-ref")?;
    let source = match path {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None if program_ref.is_none() => {
            return Err(CliError::Usage(
                "client chase requires a rule <file> (or --program-ref <fingerprint>)".into(),
            ))
        }
        None => None,
    };
    let id = flag_value(args, "--id")?.unwrap_or_else(default_session_id);
    let build = |program_key: &str, program_value: &str| -> Result<String, CliError> {
        let mut line = Reply::request("chase")
            .str("id", &id)
            .str(program_key, program_value);
        if let Some(tenant) = flag_value(args, "--tenant")? {
            line = line.str("tenant", &tenant);
        }
        if let Some(strategy) = flag_value(args, "--strategy")? {
            if !matches!(strategy.as_str(), "fifo" | "lifo" | "random" | "priority") {
                return Err(CliError::Usage(format!("unknown strategy '{strategy}'")));
            }
            line = line.str("strategy", &strategy);
        }
        if let Some(seed) = flag_value(args, "--seed")? {
            line = line.num("seed", crate::parse_seed(&seed)?);
        }
        // The server-side default budget is unbounded; mirror the direct
        // `chasectl chase` default so a non-terminating program submitted
        // without --steps cannot occupy a runner forever.
        line = line.num("max_steps", num_flag(args, "--steps")?.unwrap_or(10_000));
        if let Some(atoms) = num_flag(args, "--max-atoms")? {
            line = line.num("max_atoms", atoms);
        }
        if let Some(ms) = num_flag(args, "--deadline-ms")? {
            line = line.num("deadline_ms", ms);
        }
        if let Some(threads) = crate::threads_from_flags(args)? {
            line = line.num("threads", threads as u64);
        }
        if args.iter().any(|a| a == "--telemetry") {
            line = line.bool("telemetry", true);
        }
        Ok(line.finish())
    };
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let (primary, fallback) = program_lines(&build, program_ref.as_deref(), source.as_deref())?;
    let result = submit(endpoint, &primary, fallback.as_deref(), args, telemetry)?;
    let Some(result) = result else {
        return Ok(ExitCode::from(EXIT_OVERLOADED));
    };
    match result.get("status").and_then(Scalar::as_str).unwrap_or("") {
        "ok" => {
            let get_num = |key: &str| result.get(key).and_then(Scalar::as_num).unwrap_or(0);
            let outcome = result
                .get("outcome")
                .and_then(Scalar::as_str)
                .unwrap_or("?")
                .to_string();
            println!(
                "session {id}: {} after {} steps, {} atoms (fingerprint {}, {} event(s) sent, {} dropped)",
                outcome.replace('_', " "),
                get_num("steps"),
                get_num("atoms"),
                result
                    .get("fingerprint")
                    .and_then(Scalar::as_str)
                    .unwrap_or("?"),
                get_num("events_sent"),
                get_num("events_dropped"),
            );
            let code = match outcome.as_str() {
                "terminated" => 0,
                "budget_exhausted" => EXIT_BUDGET,
                "deadline_exceeded" => EXIT_DEADLINE,
                "cancelled" => EXIT_CANCELLED,
                _ => EXIT_FAILURE,
            };
            Ok(ExitCode::from(code))
        }
        status => session_failure(&id, status, &result),
    }
}

fn cmd_client_decide(endpoint: &Endpoint, args: &[String]) -> Result<ExitCode, CliError> {
    let path = args.get(2).filter(|a| !a.starts_with("--"));
    let flags_from = if path.is_some() { 3 } else { 2 };
    check_flags(
        &args[flags_from..],
        &[
            "--id",
            "--tenant",
            "--deadline-ms",
            "--retries",
            "--program-ref",
        ],
        &["--telemetry"],
    )?;
    let program_ref = flag_value(args, "--program-ref")?;
    let source = match path {
        Some(path) => {
            Some(std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?)
        }
        None if program_ref.is_none() => {
            return Err(CliError::Usage(
                "client decide requires a rule <file> (or --program-ref <fingerprint>)".into(),
            ))
        }
        None => None,
    };
    let id = flag_value(args, "--id")?.unwrap_or_else(default_session_id);
    let build = |program_key: &str, program_value: &str| -> Result<String, CliError> {
        let mut line = Reply::request("decide")
            .str("id", &id)
            .str(program_key, program_value);
        if let Some(tenant) = flag_value(args, "--tenant")? {
            line = line.str("tenant", &tenant);
        }
        if let Some(ms) = num_flag(args, "--deadline-ms")? {
            line = line.num("deadline_ms", ms);
        }
        if args.iter().any(|a| a == "--telemetry") {
            line = line.bool("telemetry", true);
        }
        Ok(line.finish())
    };
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let (primary, fallback) = program_lines(&build, program_ref.as_deref(), source.as_deref())?;
    let result = submit(endpoint, &primary, fallback.as_deref(), args, telemetry)?;
    let Some(result) = result else {
        return Ok(ExitCode::from(EXIT_OVERLOADED));
    };
    match result.get("status").and_then(Scalar::as_str).unwrap_or("") {
        "ok" => {
            let verdict = result
                .get("verdict")
                .and_then(Scalar::as_str)
                .unwrap_or("?")
                .to_string();
            let reason = result.get("reason").and_then(Scalar::as_str);
            match reason {
                Some(reason) => println!("session {id}: verdict {verdict} ({reason})"),
                None => println!("session {id}: verdict {verdict}"),
            }
            // Mirror `chasectl decide`: interrupted Unknowns get the
            // deadline/cancel codes; honest verdicts are success.
            let code = match reason {
                Some(r) if r.starts_with("deadline exceeded") => EXIT_DEADLINE,
                Some(r) if r.starts_with("cancelled") => EXIT_CANCELLED,
                _ => 0,
            };
            Ok(ExitCode::from(code))
        }
        status => session_failure(&id, status, &result),
    }
}

/// Chooses the primary request line (and a full-source fallback, when
/// both `--program-ref` and a rule file were given) for a chase/decide
/// submission. A ref-only line keeps the wire payload to 32 hex digits
/// on the warm path; the fallback covers the server-side cache miss.
fn program_lines(
    build: &dyn Fn(&str, &str) -> Result<String, CliError>,
    program_ref: Option<&str>,
    source: Option<&str>,
) -> Result<(String, Option<String>), CliError> {
    match (program_ref, source) {
        (Some(fp), Some(src)) => Ok((build("program_ref", fp)?, Some(build("program", src)?))),
        (Some(fp), None) => Ok((build("program_ref", fp)?, None)),
        (None, Some(src)) => Ok((build("program", src)?, None)),
        (None, None) => unreachable!("callers require a file or --program-ref"),
    }
}

/// Drives one session to its result, relaying telemetry event lines to
/// stdout when requested. `Ok(None)` means the submission was shed on
/// every attempt (the overloaded exit code); other client errors are
/// runtime failures.
fn submit(
    endpoint: &Endpoint,
    request_line: &str,
    fallback_line: Option<&str>,
    args: &[String],
    relay_events: bool,
) -> Result<Option<BTreeMap<String, Scalar>>, CliError> {
    let config = ClientConfig {
        retries: num_flag(args, "--retries")?
            .map(|n| n as u32)
            .unwrap_or(ClientConfig::default().retries),
        ..ClientConfig::default()
    };
    let outcome =
        run_session_with_fallback(endpoint, request_line, fallback_line, &config, |line| {
            if relay_events && line.get("type").and_then(Scalar::as_str) == Some("event") {
                println!("{}", render_flat(line));
            }
        });
    match outcome {
        Ok(session) => Ok(Some(session.result)),
        Err(ClientError::Overloaded(attempts)) => {
            eprintln!("chasectl: server overloaded after {attempts} attempt(s)");
            Ok(None)
        }
        Err(e) => Err(CliError::Runtime(e.to_string())),
    }
}

/// Renders a `parse_error`/`panicked`/unknown result and exits 1.
fn session_failure(
    id: &str,
    status: &str,
    result: &BTreeMap<String, Scalar>,
) -> Result<ExitCode, CliError> {
    let error = result
        .get("error")
        .and_then(Scalar::as_str)
        .unwrap_or("no detail");
    eprintln!("chasectl: session {id}: {status}: {error}");
    Ok(ExitCode::from(EXIT_FAILURE))
}

/// A collision-resistant default session id: pid + sub-second clock.
fn default_session_id() -> String {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    format!("cli-{}-{nanos:08x}", std::process::id())
}

/// Re-encodes a parsed reply line as flat JSON (keys in `BTreeMap`
/// order — stable, though not necessarily the wire order).
fn render_flat(map: &BTreeMap<String, Scalar>) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    for (i, (key, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(&mut out, key);
        out.push_str("\":");
        match value {
            Scalar::Str(s) => {
                out.push('"');
                escape_json(&mut out, s);
                out.push('"');
            }
            Scalar::Num(n) => out.push_str(&n.to_string()),
            Scalar::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_flat_round_trips_through_the_shared_parser() {
        let mut map = BTreeMap::new();
        map.insert("type".to_string(), Scalar::Str("result\"x".into()));
        map.insert("steps".to_string(), Scalar::Num(9));
        map.insert("ok".to_string(), Scalar::Bool(true));
        let line = render_flat(&map);
        let parsed = chase_telemetry::json::parse_line(&line).unwrap();
        assert_eq!(parsed, map);
    }
}
