//! `chasectl stats` — offline aggregation of `--trace` JSON Lines
//! files into the same counter/phase table the live `--metrics` flag
//! prints.
//!
//! Each line of a trace is one flat JSON object (see the event schema
//! in the `chase-telemetry` crate docs), decoded by the shared
//! [`chase_telemetry::json`] parser — the same grammar the
//! `chase-server` wire protocol speaks, so a captured session
//! transcript aggregates like any other trace. A malformed line is a
//! hard error with its line number, so `stats` doubles as a trace
//! validator.
//!
//! Several files (or a directory of `*.jsonl` files) merge into one
//! combined table; `--follow` tails a growing trace, rendering each
//! progress heartbeat as it lands and the merged table at the end
//! (`--idle-exit-ms N` stops once the file has been quiet that long).

use std::collections::BTreeMap;

use chase_telemetry::summary::format_nanos;
use chase_telemetry::{names, HistogramSnapshot, TelemetrySummary};

pub use chase_telemetry::json::{parse_line, Scalar};

/// The aggregation of one whole trace file.
#[derive(Debug, Default)]
pub struct TraceStats {
    /// Lines (= events) seen.
    pub events: u64,
    /// Event kind → occurrence count.
    pub kinds: BTreeMap<String, u64>,
    /// Counter name → value, in the `chase-telemetry` vocabulary.
    pub counters: BTreeMap<String, u64>,
    /// `(phase, total nanos)` in completion order.
    pub phases: Vec<(String, u64)>,
    /// Aggregated `queue_depth` samples.
    pub queue_depth: Option<HistogramSnapshot>,
    /// Per-span-name latency histograms (`span.<name>`) from the
    /// profiling stream's `span_exited` events.
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Total-instance-bytes samples from `memory_sampled` events.
    pub memory: Option<HistogramSnapshot>,
}

impl TraceStats {
    fn bump(&mut self, counter: &str, delta: u64) {
        *self.counters.entry(counter.to_string()).or_insert(0) += delta;
    }

    /// Folds one parsed event into the statistics.
    pub fn record(&mut self, event: &BTreeMap<String, Scalar>) -> Result<(), String> {
        let kind = event
            .get("event")
            .and_then(Scalar::as_str)
            .ok_or("missing string \"event\" key")?
            .to_string();
        self.events += 1;
        *self.kinds.entry(kind.clone()).or_insert(0) += 1;
        let num = |key: &str| -> Result<u64, String> {
            event
                .get(key)
                .and_then(Scalar::as_num)
                .ok_or_else(|| format!("{kind}: missing integer \"{key}\""))
        };
        match kind.as_str() {
            "trigger_discovered" => self.bump(names::TRIGGERS_DISCOVERED, 1),
            "trigger_checked" => {
                self.bump(names::TRIGGERS_CHECKED, 1);
                let active = event
                    .get("active")
                    .and_then(Scalar::as_bool)
                    .ok_or("trigger_checked: missing boolean \"active\"")?;
                if active {
                    self.bump(names::TRIGGERS_ACTIVE, 1);
                }
            }
            "trigger_applied" => self.bump(names::TRIGGERS_APPLIED, 1),
            "trigger_deactivated" => self.bump(names::TRIGGERS_DEACTIVATED, 1),
            "null_invented" => self.bump(names::NULLS_INVENTED, 1),
            "atom_inserted" => {
                self.bump(names::ATOMS_INSERTED, 1);
                if event.get("fresh").and_then(Scalar::as_bool) == Some(true) {
                    self.bump(names::ATOMS_FRESH, 1);
                }
            }
            "queue_depth" => {
                let depth = num("depth")?;
                self.queue_depth
                    .get_or_insert_with(HistogramSnapshot::empty)
                    .record(depth);
            }
            "span_entered" => {}
            "span_exited" => {
                let span = event
                    .get("span")
                    .and_then(Scalar::as_str)
                    .ok_or("span_exited: missing string \"span\"")?;
                let nanos = num("nanos")?;
                self.spans
                    .entry(format!("span.{span}"))
                    .or_insert_with(HistogramSnapshot::empty)
                    .record(nanos);
            }
            "memory_sampled" => {
                let total = num("atom_bytes")?
                    + num("arg_spill_bytes")?
                    + num("dedup_bytes")?
                    + num("index_bytes")?;
                self.memory
                    .get_or_insert_with(HistogramSnapshot::empty)
                    .record(total);
            }
            "heartbeat" => self.bump(names::HEARTBEATS, 1),
            "counter_add" => {
                let name = event
                    .get("name")
                    .and_then(Scalar::as_str)
                    .ok_or("counter_add: missing string \"name\"")?
                    .to_string();
                let delta = num("delta")?;
                self.bump(&name, delta);
            }
            "worker_panicked" => {
                let panics = num("panics")?;
                self.bump(names::WORKER_PANICS, panics);
            }
            "run_interrupted" => self.bump(names::RUNS_INTERRUPTED, 1),
            "phase_entered" => {}
            "phase_exited" => {
                let phase = event
                    .get("phase")
                    .and_then(Scalar::as_str)
                    .ok_or("phase_exited: missing string \"phase\"")?;
                let nanos = num("nanos")?;
                match self.phases.iter_mut().find(|(p, _)| p == phase) {
                    Some((_, total)) => *total += nanos,
                    None => self.phases.push((phase.to_string(), nanos)),
                }
            }
            // Unknown kinds are tolerated (newer traces) but still
            // counted in the per-kind table.
            _ => {}
        }
        Ok(())
    }

    /// The stats as a [`TelemetrySummary`], for table rendering.
    pub fn summary(&self) -> TelemetrySummary {
        let mut histograms: Vec<(String, HistogramSnapshot)> = Vec::new();
        if let Some(h) = &self.queue_depth {
            histograms.push((names::QUEUE_DEPTH.to_string(), h.clone()));
        }
        if let Some(h) = &self.memory {
            histograms.push((names::MEMORY_BYTES.to_string(), h.clone()));
        }
        for (name, h) in &self.spans {
            histograms.push((name.clone(), h.clone()));
        }
        TelemetrySummary {
            phases: self.phases.clone(),
            counters: self
                .counters
                .iter()
                .map(|(name, value)| (name.clone(), *value))
                .collect(),
            histograms,
        }
    }
}

/// Folds a whole trace into `stats`, one event per non-empty line.
fn fold_text(stats: &mut TraceStats, text: &str) -> Result<(), String> {
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_line(line).map_err(|e| format!("line {}: {e}", idx + 1))?;
        stats
            .record(&event)
            .map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(())
}

/// Parses a whole trace, one event per non-empty line.
#[cfg(test)]
pub fn aggregate(text: &str) -> Result<TraceStats, String> {
    let mut stats = TraceStats::default();
    fold_text(&mut stats, text)?;
    Ok(stats)
}

/// Expands `path` into the trace files it denotes: itself for a file,
/// its `*.jsonl` children (sorted by name) for a directory.
fn expand_path(path: &str) -> Result<Vec<String>, String> {
    let meta = std::fs::metadata(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !meta.is_dir() {
        return Ok(vec![path.to_string()]);
    }
    let mut files: Vec<String> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {path}: {e}"))?
        .filter_map(|entry| {
            let p = entry.ok()?.path();
            (p.extension().and_then(|e| e.to_str()) == Some("jsonl"))
                .then(|| p.to_string_lossy().into_owned())
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("{path}: no .jsonl files in directory"));
    }
    Ok(files)
}

/// Renders the merged statistics table.
fn render(stats: &TraceStats) {
    if stats.events == 0 {
        return;
    }
    println!("  {:<32} {:>12}", "event kind", "count");
    for (kind, count) in &stats.kinds {
        println!("  {kind:<32} {count:>12}");
    }
    print!("{}", stats.summary().render_table());
    let total_phase_nanos: u64 = stats.phases.iter().map(|&(_, n)| n).sum();
    if total_phase_nanos > 0 {
        println!(
            "  {:<32} {:>12}",
            "total phase wall-clock",
            format_nanos(total_phase_nanos)
        );
    }
}

/// The `chasectl stats <path>...` entry point: merges every given
/// trace file (directories expand to their `*.jsonl` children) into
/// one table.
pub fn cmd_stats(paths: &[String]) -> Result<(), String> {
    let mut stats = TraceStats::default();
    let mut files = Vec::new();
    for path in paths {
        files.extend(expand_path(path)?);
    }
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let before = stats.events;
        fold_text(&mut stats, &text).map_err(|e| format!("{path}: {e}"))?;
        println!("trace: {path}: {} event(s)", stats.events - before);
    }
    if files.len() > 1 {
        println!("merged: {} file(s), {} event(s)", files.len(), stats.events);
    }
    render(&stats);
    Ok(())
}

/// One-line human rendering of a `heartbeat` event (follow mode).
fn heartbeat_line(event: &BTreeMap<String, Scalar>) -> String {
    let num = |key: &str| event.get(key).and_then(Scalar::as_num).unwrap_or(0);
    format!(
        "heartbeat: step {} | {} steps/s | {} atoms ({} atoms/s) | queue {} | {}",
        num("step"),
        num("steps_per_sec"),
        num("atoms"),
        num("atoms_per_sec"),
        num("queue_depth"),
        format_nanos(num("elapsed_ns")),
    )
}

/// Shortest and longest pauses of the follow-mode poll loop. An idle
/// trace costs one `read` per [`FOLLOW_MAX_SLEEP_MS`] rather than a
/// busy spin; the pause resets to [`FOLLOW_MIN_SLEEP_MS`] the moment
/// data arrives so an active producer is still tailed promptly.
const FOLLOW_MIN_SLEEP_MS: u64 = 10;
const FOLLOW_MAX_SLEEP_MS: u64 = 250;

/// The `chasectl stats --follow <file>` entry point: tails a growing
/// trace, printing a progress line per heartbeat, and the merged table
/// once the producer goes quiet for `idle_exit_ms` (forever if
/// `None`). Only complete (newline-terminated) lines are consumed, so
/// a line caught mid-write is never misparsed. Polling backs off
/// exponentially while the file is quiet (10ms doubling to a 250ms
/// cap) and snaps back on new data.
pub fn cmd_stats_follow(path: &str, idle_exit_ms: Option<u64>) -> Result<(), String> {
    use std::io::Read;
    let mut file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let mut stats = TraceStats::default();
    let mut pending = String::new();
    let mut lines = 0usize;
    let mut last_data = std::time::Instant::now();
    let mut sleep_ms = FOLLOW_MIN_SLEEP_MS;
    loop {
        let mut chunk = String::new();
        file.read_to_string(&mut chunk)
            .map_err(|e| format!("reading {path}: {e}"))?;
        if chunk.is_empty() {
            let mut pause = sleep_ms;
            if let Some(ms) = idle_exit_ms {
                let idle = std::time::Duration::from_millis(ms);
                let elapsed = last_data.elapsed();
                if elapsed >= idle {
                    break;
                }
                // Never sleep past the idle deadline.
                pause = pause.min((idle - elapsed).as_millis().max(1) as u64);
            }
            std::thread::sleep(std::time::Duration::from_millis(pause));
            sleep_ms = (sleep_ms * 2).min(FOLLOW_MAX_SLEEP_MS);
            continue;
        }
        last_data = std::time::Instant::now();
        sleep_ms = FOLLOW_MIN_SLEEP_MS;
        pending.push_str(&chunk);
        while let Some(nl) = pending.find('\n') {
            let line: String = pending.drain(..=nl).collect();
            let line = line.trim_end();
            lines += 1;
            if line.trim().is_empty() {
                continue;
            }
            let event = parse_line(line).map_err(|e| format!("{path}: line {lines}: {e}"))?;
            stats
                .record(&event)
                .map_err(|e| format!("{path}: line {lines}: {e}"))?;
            if event.get("event").and_then(Scalar::as_str) == Some("heartbeat") {
                println!("{}", heartbeat_line(&event));
            }
        }
    }
    println!("trace: {path}: {} event(s)", stats.events);
    render(&stats);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_telemetry::{EngineKind, Event};

    #[test]
    fn parses_every_event_kind_the_writer_emits() {
        let engine = EngineKind::Restricted;
        let events = [
            Event::TriggerDiscovered {
                engine,
                tgd: 1,
                step: 0,
            },
            Event::TriggerChecked {
                engine,
                tgd: 1,
                step: 0,
                active: false,
            },
            Event::TriggerApplied {
                engine,
                tgd: 1,
                step: 1,
                new_atoms: 2,
                new_nulls: 1,
            },
            Event::TriggerDeactivated {
                engine,
                tgd: 1,
                step: 2,
            },
            Event::NullInvented {
                engine,
                null: 3,
                step: 1,
            },
            Event::AtomInserted {
                engine,
                predicate: 0,
                step: 1,
                fresh: true,
            },
            Event::QueueDepth {
                engine,
                step: 1,
                depth: 4,
            },
            Event::CounterAdd {
                name: "sticky.automaton_states",
                delta: 17,
            },
            Event::WorkerPanicked {
                engine,
                step: 1,
                panics: 1,
            },
            Event::RunInterrupted {
                engine,
                step: 2,
                reason: chase_telemetry::InterruptReason::Deadline,
            },
            Event::PhaseEntered { phase: "classify" },
            Event::PhaseExited {
                phase: "classify",
                nanos: 1200,
            },
        ];
        for e in &events {
            let parsed = parse_line(&e.to_json()).unwrap_or_else(|err| panic!("{err}: {e:?}"));
            assert_eq!(
                parsed.get("event").and_then(Scalar::as_str),
                Some(e.kind()),
                "{e:?}"
            );
        }
    }

    #[test]
    fn parse_line_rejects_malformed_input() {
        assert!(parse_line("").is_err());
        assert!(parse_line("{").is_err());
        assert!(parse_line("{\"a\":1,}").is_err());
        assert!(parse_line("{\"a\":1} trailing").is_err());
        assert!(parse_line("{\"a\":[1]}").is_err()); // nesting unsupported
        assert!(parse_line("{\"a\":1,\"a\":2}").is_err()); // duplicate key
        assert!(parse_line("[1,2]").is_err());
    }

    #[test]
    fn parse_line_unescapes_strings() {
        let parsed = parse_line("{\"s\":\"a\\\"b\\\\c\\nd\\u0041\"}").unwrap();
        assert_eq!(
            parsed.get("s").and_then(Scalar::as_str),
            Some("a\"b\\c\nd\u{41}")
        );
    }

    #[test]
    fn aggregate_reproduces_counter_semantics() {
        let trace = "\
{\"event\":\"trigger_discovered\",\"engine\":\"restricted\",\"tgd\":0,\"step\":0}
{\"event\":\"trigger_checked\",\"engine\":\"restricted\",\"tgd\":0,\"step\":0,\"active\":true}
{\"event\":\"trigger_applied\",\"engine\":\"restricted\",\"tgd\":0,\"step\":1,\"new_atoms\":1,\"new_nulls\":1}
{\"event\":\"trigger_checked\",\"engine\":\"restricted\",\"tgd\":0,\"step\":1,\"active\":false}
{\"event\":\"trigger_deactivated\",\"engine\":\"restricted\",\"tgd\":0,\"step\":1}
{\"event\":\"queue_depth\",\"engine\":\"restricted\",\"step\":1,\"depth\":3}
{\"event\":\"counter_add\",\"name\":\"guarded.seeds_tried\",\"delta\":2}
{\"event\":\"worker_panicked\",\"engine\":\"restricted\",\"step\":1,\"panics\":2}
{\"event\":\"run_interrupted\",\"engine\":\"restricted\",\"step\":1,\"reason\":\"cancelled\"}
{\"event\":\"phase_exited\",\"phase\":\"classify\",\"nanos\":100}
{\"event\":\"phase_exited\",\"phase\":\"classify\",\"nanos\":50}
";
        let stats = aggregate(trace).unwrap();
        assert_eq!(stats.events, 11);
        assert_eq!(stats.counters[names::WORKER_PANICS], 2);
        assert_eq!(stats.counters[names::RUNS_INTERRUPTED], 1);
        assert_eq!(stats.counters[names::TRIGGERS_CHECKED], 2);
        assert_eq!(stats.counters[names::TRIGGERS_ACTIVE], 1);
        assert_eq!(stats.counters[names::TRIGGERS_APPLIED], 1);
        assert_eq!(stats.counters[names::TRIGGERS_DEACTIVATED], 1);
        assert_eq!(stats.counters["guarded.seeds_tried"], 2);
        let summary = stats.summary();
        assert_eq!(summary.phase_nanos("classify"), Some(150));
        let depth = summary.histogram(names::QUEUE_DEPTH).unwrap();
        assert_eq!(depth.count, 1);
        assert_eq!(depth.max, 3);
    }

    #[test]
    fn aggregate_folds_profiling_events() {
        let trace = "\
{\"event\":\"span_entered\",\"v\":2,\"span\":\"run\"}
{\"event\":\"span_entered\",\"v\":2,\"span\":\"step\",\"tgd\":0}
{\"event\":\"span_exited\",\"v\":2,\"span\":\"step\",\"tgd\":0,\"nanos\":120}
{\"event\":\"span_exited\",\"v\":2,\"span\":\"run\",\"nanos\":500}
{\"event\":\"memory_sampled\",\"v\":2,\"engine\":\"restricted\",\"step\":1,\"atoms\":3,\"atom_bytes\":96,\"arg_spill_bytes\":0,\"dedup_bytes\":64,\"index_bytes\":32,\"queue_depth\":1,\"allocations\":10}
{\"event\":\"heartbeat\",\"v\":2,\"engine\":\"restricted\",\"step\":1,\"elapsed_ns\":1000,\"steps_per_sec\":5,\"atoms\":3,\"atoms_per_sec\":15,\"queue_depth\":1}
";
        let stats = aggregate(trace).unwrap();
        assert_eq!(stats.events, 6);
        assert_eq!(stats.counters[names::HEARTBEATS], 1);
        let summary = stats.summary();
        let run = summary.histogram("span.run").unwrap();
        assert_eq!(run.count, 1);
        assert_eq!(run.max, 500);
        let step = summary.histogram("span.step").unwrap();
        assert_eq!(step.sum, 120);
        let mem = summary.histogram(names::MEMORY_BYTES).unwrap();
        assert_eq!(mem.max, 96 + 64 + 32);
    }

    #[test]
    fn aggregate_reports_the_failing_line() {
        let err =
            aggregate("{\"event\":\"phase_entered\",\"phase\":\"x\"}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
