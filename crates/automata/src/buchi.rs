//! Lazily expanded Büchi automata.
//!
//! The sticky decision procedure (Section 6.5 / Appendix D.2 of the
//! paper) reduces non-termination to the emptiness of a deterministic
//! Büchi automaton whose state space is finite but astronomically
//! large if materialised eagerly. This module therefore works with an
//! *implicit* automaton: a trait supplying initial states, a finite
//! alphabet and a transition function; states are interned on the fly
//! and only the reachable fragment is ever built.

use std::hash::Hash;

/// An implicitly represented Büchi automaton, deterministic per input
/// symbol (the paper's `A_T` is deterministic; nondeterminism lives in
/// the choice of the input word, i.e. which edge to follow).
pub trait BuchiAutomaton {
    /// Automaton states. Cheaply clonable; interned by the explorer.
    type State: Clone + Eq + Hash;
    /// Input symbols (the caterpillar alphabet `Λ_T`).
    type Symbol: Clone;

    /// The initial states (the union over start pairs `(e₀, Π₀)`).
    fn initial_states(&self) -> Vec<Self::State>;

    /// The finite input alphabet.
    fn alphabet(&self) -> Vec<Self::Symbol>;

    /// The successor of `state` on `symbol`; `None` encodes the reject
    /// sink (transitions into it are dropped from the graph).
    fn next(&self, state: &Self::State, symbol: &Self::Symbol) -> Option<Self::State>;

    /// Büchi acceptance: the run must visit accepting states
    /// infinitely often.
    fn is_accepting(&self, state: &Self::State) -> bool;
}

/// An ultimately periodic word `prefix · cycleᵚ` witnessing
/// non-emptiness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lasso<Sym> {
    /// The finite prefix.
    pub prefix: Vec<Sym>,
    /// The repeated cycle (non-empty; visits an accepting state).
    pub cycle: Vec<Sym>,
}

/// Outcome of an emptiness check.
#[derive(Debug, Clone)]
pub enum Emptiness<Sym> {
    /// `L(A) = ∅` within the explored fragment, which is exhaustive.
    Empty {
        /// Number of reachable states.
        states: usize,
    },
    /// A witness lasso was found.
    NonEmpty {
        /// The accepting lasso.
        lasso: Lasso<Sym>,
        /// Number of states explored before the witness was returned.
        states: usize,
    },
    /// The state cap was hit before the search finished; the result is
    /// unknown. (A resource guard, never a silent truncation.)
    Capped {
        /// The cap that was hit.
        cap: usize,
    },
}

impl<Sym> Emptiness<Sym> {
    /// `true` iff the language was proven empty.
    pub fn is_empty_language(&self) -> bool {
        matches!(self, Emptiness::Empty { .. })
    }

    /// The witness lasso, if any.
    pub fn lasso(&self) -> Option<&Lasso<Sym>> {
        match self {
            Emptiness::NonEmpty { lasso, .. } => Some(lasso),
            _ => None,
        }
    }
}

/// Explores an implicit Büchi automaton and decides emptiness.
pub struct Explorer<A: BuchiAutomaton> {
    automaton: A,
    cap: usize,
}

struct ReachableGraph<S, Sym> {
    states: Vec<S>,
    /// Edges `(from, symbol index, to)`.
    edges: Vec<(usize, usize, usize)>,
    accepting: Vec<bool>,
    initial: Vec<usize>,
    symbols: Vec<Sym>,
}

impl<A: BuchiAutomaton> Explorer<A> {
    /// Creates an explorer with a state cap (resource guard).
    pub fn new(automaton: A, cap: usize) -> Self {
        Explorer { automaton, cap }
    }

    /// Access to the wrapped automaton.
    pub fn automaton(&self) -> &A {
        &self.automaton
    }

    fn build_graph(&self) -> Result<ReachableGraph<A::State, A::Symbol>, usize> {
        use std::collections::hash_map::Entry;
        use std::collections::HashMap;
        let symbols = self.automaton.alphabet();
        let mut states: Vec<A::State> = Vec::new();
        let mut index: HashMap<A::State, usize> = HashMap::new();
        let mut edges = Vec::new();
        let mut initial = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        for s in self.automaton.initial_states() {
            match index.entry(s.clone()) {
                Entry::Occupied(e) => initial.push(*e.get()),
                Entry::Vacant(e) => {
                    let id = states.len();
                    e.insert(id);
                    states.push(s);
                    initial.push(id);
                    queue.push_back(id);
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            for (si, sym) in symbols.iter().enumerate() {
                let Some(next) = self.automaton.next(&states[u], sym) else {
                    continue;
                };
                let v = match index.entry(next.clone()) {
                    Entry::Occupied(e) => *e.get(),
                    Entry::Vacant(e) => {
                        if states.len() >= self.cap {
                            return Err(self.cap);
                        }
                        let id = states.len();
                        e.insert(id);
                        states.push(next);
                        queue.push_back(id);
                        id
                    }
                };
                edges.push((u, si, v));
            }
        }
        let accepting = states
            .iter()
            .map(|s| self.automaton.is_accepting(s))
            .collect();
        Ok(ReachableGraph {
            states,
            edges,
            accepting,
            initial,
            symbols,
        })
    }

    /// Decides emptiness by SCC analysis of the reachable graph: the
    /// language is non-empty iff some accepting state lies in a
    /// non-trivial SCC (or has a self-loop). Returns a witness lasso
    /// in that case.
    pub fn emptiness(&self) -> Emptiness<A::Symbol> {
        let graph = match self.build_graph() {
            Ok(g) => g,
            Err(cap) => return Emptiness::Capped { cap },
        };
        let n = graph.states.len();
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n]; // (symbol, to)
        for &(f, s, t) in &graph.edges {
            adj[f].push((s, t));
        }
        let comp = sccs(n, &adj);
        // Size of each component and self-loops.
        let mut comp_size = vec![0usize; n];
        for &c in &comp {
            comp_size[c] += 1;
        }
        let mut target = None;
        'outer: for q in 0..n {
            if !graph.accepting[q] {
                continue;
            }
            let nontrivial = comp_size[comp[q]] > 1 || adj[q].iter().any(|&(_, t)| t == q);
            if nontrivial {
                target = Some(q);
                break 'outer;
            }
        }
        let Some(q) = target else {
            return Emptiness::Empty { states: n };
        };
        // Witness: shortest prefix init → q, then shortest non-empty
        // cycle q → q inside the component.
        let prefix = bfs_path(&adj, &graph.initial, |v| v == q).expect("q reachable");
        let cycle = bfs_cycle(&adj, q, &comp).expect("q on a cycle");
        let to_syms = |path: Vec<usize>| {
            path.into_iter()
                .map(|si| graph.symbols[si].clone())
                .collect::<Vec<_>>()
        };
        Emptiness::NonEmpty {
            lasso: Lasso {
                prefix: to_syms(prefix),
                cycle: to_syms(cycle),
            },
            states: n,
        }
    }

    /// The number of reachable states (diagnostics / benchmarks), or
    /// `None` if the cap is hit.
    pub fn reachable_states(&self) -> Option<usize> {
        self.build_graph().ok().map(|g| g.states.len())
    }
}

/// Iterative Tarjan SCC; returns component id per node.
fn sccs(n: usize, adj: &[Vec<(usize, usize)>]) -> Vec<usize> {
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut next_index = 0usize;
    let mut next_comp = 0usize;
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some(&(v, child)) = call.last() {
            if child < adj[v].len() {
                let (_, w) = adj[v][child];
                call.last_mut().expect("nonempty").1 += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p] = low[p].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("stack nonempty");
                        on_stack[w] = false;
                        comp[w] = next_comp;
                        if w == v {
                            break;
                        }
                    }
                    next_comp += 1;
                }
            }
        }
    }
    comp
}

/// BFS from `starts` until `goal` holds; returns the symbol sequence.
fn bfs_path(
    adj: &[Vec<(usize, usize)>],
    starts: &[usize],
    goal: impl Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (from, symbol)
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in starts {
        if !visited[s] {
            visited[s] = true;
            queue.push_back(s);
        }
    }
    let mut found = starts.iter().copied().find(|&s| goal(s));
    while found.is_none() {
        let u = queue.pop_front()?;
        for &(sym, v) in &adj[u] {
            if !visited[v] {
                visited[v] = true;
                prev[v] = Some((u, sym));
                if goal(v) {
                    found = Some(v);
                    break;
                }
                queue.push_back(v);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = found?;
    while let Some((from, sym)) = prev[cur] {
        path.push(sym);
        cur = from;
    }
    path.reverse();
    Some(path)
}

/// Shortest non-empty cycle through `q` staying inside `q`'s SCC.
fn bfs_cycle(adj: &[Vec<(usize, usize)>], q: usize, comp: &[usize]) -> Option<Vec<usize>> {
    // One step out of q (within the SCC), then BFS back to q.
    let cq = comp[q];
    for &(sym, first) in &adj[q] {
        if comp[first] != cq {
            continue;
        }
        if first == q {
            return Some(vec![sym]);
        }
        let restricted: Vec<Vec<(usize, usize)>> = adj
            .iter()
            .enumerate()
            .map(|(u, outs)| {
                if comp[u] == cq {
                    outs.iter()
                        .copied()
                        .filter(|&(_, t)| comp[t] == cq)
                        .collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        if let Some(back) = bfs_path(&restricted, &[first], |v| v == q) {
            let mut cycle = vec![sym];
            cycle.extend(back);
            return Some(cycle);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy automaton over the alphabet {0, 1}: states are `u8`
    /// counters mod `modulus`; symbol 0 increments, symbol 1 resets;
    /// accepting iff the counter equals `accept`. Transitions out of
    /// `dead` states (counter == modulus-1 when `trap` is set) reject.
    struct Toy {
        modulus: u8,
        accept: u8,
        trap: bool,
    }

    impl BuchiAutomaton for Toy {
        type State = u8;
        type Symbol = u8;

        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }

        fn alphabet(&self) -> Vec<u8> {
            vec![0, 1]
        }

        fn next(&self, state: &u8, symbol: &u8) -> Option<u8> {
            if self.trap && *state == self.modulus - 1 {
                return None;
            }
            Some(match symbol {
                0 => (state + 1) % self.modulus,
                _ => 0,
            })
        }

        fn is_accepting(&self, state: &u8) -> bool {
            *state == self.accept
        }
    }

    #[test]
    fn nonempty_with_reachable_accepting_cycle() {
        let e = Explorer::new(
            Toy {
                modulus: 5,
                accept: 3,
                trap: false,
            },
            1000,
        );
        match e.emptiness() {
            Emptiness::NonEmpty { lasso, states } => {
                assert_eq!(states, 5);
                assert!(!lasso.cycle.is_empty());
                // Replay the lasso and check it visits state 3 in the cycle.
                let toy = Toy {
                    modulus: 5,
                    accept: 3,
                    trap: false,
                };
                let mut s = 0u8;
                for sym in &lasso.prefix {
                    s = toy.next(&s, sym).unwrap();
                }
                let mut hit = s == 3;
                let entry = s;
                for sym in &lasso.cycle {
                    s = toy.next(&s, sym).unwrap();
                    hit |= s == 3;
                }
                assert_eq!(s, entry, "cycle must return to its entry state");
                assert!(hit, "cycle must visit an accepting state");
            }
            other => panic!("expected NonEmpty, got {other:?}"),
        }
    }

    #[test]
    fn empty_when_accepting_state_unreachable() {
        let e = Explorer::new(
            Toy {
                modulus: 5,
                accept: 7, // never reached (counter < 5)
                trap: false,
            },
            1000,
        );
        assert!(e.emptiness().is_empty_language());
    }

    #[test]
    fn empty_when_accepting_state_not_on_cycle() {
        // With trap=true, state 4 has no outgoing edges. Accepting
        // state 4 is reachable but on no cycle.
        let e = Explorer::new(
            Toy {
                modulus: 5,
                accept: 4,
                trap: true,
            },
            1000,
        );
        assert!(e.emptiness().is_empty_language());
    }

    #[test]
    fn self_loop_accepted() {
        // modulus 1: single state 0, symbol 0 self-loops.
        let e = Explorer::new(
            Toy {
                modulus: 1,
                accept: 0,
                trap: false,
            },
            10,
        );
        match e.emptiness() {
            Emptiness::NonEmpty { lasso, .. } => {
                assert!(lasso.prefix.is_empty());
                assert_eq!(lasso.cycle.len(), 1);
            }
            other => panic!("expected NonEmpty, got {other:?}"),
        }
    }

    #[test]
    fn cap_reported() {
        let e = Explorer::new(
            Toy {
                modulus: 200,
                accept: 199,
                trap: false,
            },
            10,
        );
        assert!(matches!(e.emptiness(), Emptiness::Capped { cap: 10 }));
    }

    #[test]
    fn reachable_state_count() {
        let e = Explorer::new(
            Toy {
                modulus: 7,
                accept: 0,
                trap: false,
            },
            1000,
        );
        assert_eq!(e.reachable_states(), Some(7));
    }
}
