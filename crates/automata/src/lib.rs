//! # chase-automata
//!
//! A small, dependency-free automata toolkit: implicitly represented
//! (lazily expanded) Büchi automata with on-the-fly emptiness checking
//! and accepting-lasso extraction.
//!
//! The sticky termination decider of `chase-termination` instantiates
//! [`buchi::BuchiAutomaton`] with the paper's `A_T` (Appendix D.2);
//! emptiness of `A_T` decides `CT^res_∀∀(S)` (Theorem 6.1).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buchi;

/// One-stop imports.
pub mod prelude {
    pub use crate::buchi::{BuchiAutomaton, Emptiness, Explorer, Lasso};
}
