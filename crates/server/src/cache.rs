//! Content-addressed caches consulted at admission: the
//! [`ProgramCache`] (compiled rule sets, LRU, entry- and byte-capped)
//! and the [`DecideCache`] (memoized termination verdicts).
//!
//! ## Keys
//!
//! Both caches key on the canonical [`ProgramFingerprint`] — stable
//! under rule reordering, whitespace and rule-local variable renaming
//! (see [`chase_core::compile`]). The program cache additionally keeps
//! a *source alias* index (FxHash of the raw source bytes →
//! fingerprint) so a byte-identical resubmission hits without any
//! parse work at all; a reformatted-but-equivalent submission pays one
//! compile, lands on the same fingerprint, and reuses the cached
//! bundle from then on (the fresh compile is dropped, the alias is
//! recorded).
//!
//! The decide cache keys on fingerprint × decider class
//! ([`chase_termination::decider_class`]): verdicts are pure functions
//! of the rule set *given* a dispatch policy, so a policy change must
//! change the key. `Unknown` verdicts are **never** cached — they
//! depend on the request's deadline/cancel budget, not just the rules.
//!
//! ## Eviction and accounting
//!
//! LRU by a monotone use-stamp, evicting while over either cap
//! (`max_entries`, `max_bytes` of [`CompiledProgram::approx_bytes`]).
//! Per-tenant accounting (lookups/hits/bytes compiled) is kept for the
//! fleet's fairness dashboards; hit/miss/eviction totals feed the
//! telemetry counters surfaced through session event streams and
//! `chasectl stats`.

use std::collections::HashMap;
use std::hash::Hasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use chase_core::compile::{compile, CompiledProgram, ProgramFingerprint};
use chase_core::error::CoreError;
use chase_core::ids::FxHasher;
use chase_termination::TerminationVerdict;

/// Capacity knobs for the [`ProgramCache`].
#[derive(Debug, Clone, Copy)]
pub struct ProgramCacheConfig {
    /// Maximum resident compiled programs.
    pub max_entries: usize,
    /// Maximum total [`CompiledProgram::approx_bytes`] across entries.
    pub max_bytes: usize,
}

impl Default for ProgramCacheConfig {
    fn default() -> Self {
        ProgramCacheConfig {
            max_entries: 128,
            max_bytes: 256 << 20,
        }
    }
}

/// Monotonic counters shared by both caches; snapshot cheaply, read
/// from any thread. These are the numbers the server splices into
/// session telemetry streams.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Program-cache lookups answered without compiling.
    pub hits: AtomicU64,
    /// Program-cache lookups that required a compile.
    pub misses: AtomicU64,
    /// Entries evicted over a cap.
    pub evictions: AtomicU64,
    /// Full `compile()` runs performed.
    pub compiles: AtomicU64,
    /// Decide verdicts answered from memoization.
    pub decide_hits: AtomicU64,
    /// Decide requests that ran a decider.
    pub decide_misses: AtomicU64,
}

impl CacheCounters {
    fn bump(field: &AtomicU64) -> u64 {
        field.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// A point-in-time copy (hits, misses, evictions, compiles,
    /// decide_hits, decide_misses).
    pub fn snapshot(&self) -> [u64; 6] {
        [
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.compiles.load(Ordering::Relaxed),
            self.decide_hits.load(Ordering::Relaxed),
            self.decide_misses.load(Ordering::Relaxed),
        ]
    }
}

/// Per-tenant accounting row (fairness dashboards, future per-tenant
/// quotas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantUsage {
    /// Program lookups attributed to the tenant.
    pub lookups: u64,
    /// Of those, answered from cache.
    pub hits: u64,
    /// Bytes of compiled program the tenant caused to be built.
    pub compiled_bytes: u64,
}

struct Entry {
    program: Arc<CompiledProgram>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct ProgramCacheInner {
    by_fp: HashMap<ProgramFingerprint, Entry>,
    /// FxHash of raw source bytes → fingerprint, for zero-parse hits
    /// on byte-identical resubmission.
    source_alias: HashMap<u64, ProgramFingerprint>,
    tenants: HashMap<String, TenantUsage>,
    total_bytes: usize,
    tick: u64,
}

impl ProgramCacheInner {
    fn touch(&mut self, fp: ProgramFingerprint) -> Option<Arc<CompiledProgram>> {
        self.tick += 1;
        let tick = self.tick;
        self.by_fp.get_mut(&fp).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.program)
        })
    }

    /// Evicts least-recently-used entries while over either cap,
    /// always keeping at least the most recent entry so one oversized
    /// program cannot render the cache unusable. Returns evictions.
    fn evict_over_caps(&mut self, config: &ProgramCacheConfig) -> u64 {
        let mut evicted = 0;
        while self.by_fp.len() > 1
            && (self.by_fp.len() > config.max_entries || self.total_bytes > config.max_bytes)
        {
            let victim = self
                .by_fp
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp)
                .expect("non-empty cache has an LRU entry");
            if let Some(entry) = self.by_fp.remove(&victim) {
                self.total_bytes -= entry.bytes;
            }
            self.source_alias.retain(|_, fp| *fp != victim);
            evicted += 1;
        }
        evicted
    }
}

/// How a program lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// Served from cache; zero parse/plan work happened.
    Hit,
    /// A fresh compile ran (and the result is now cached).
    Compiled,
}

/// A successful [`ProgramCache::resolve_source`] outcome, with the
/// per-call facts the server splices into session telemetry.
pub struct Resolved {
    /// The shared compiled bundle.
    pub program: Arc<CompiledProgram>,
    /// Hit or compiled.
    pub resolution: Resolution,
    /// Entries this call's insert pushed over a cap.
    pub evicted: u64,
}

/// The admission-time compiled-program cache.
pub struct ProgramCache {
    config: ProgramCacheConfig,
    inner: Mutex<ProgramCacheInner>,
    counters: CacheCounters,
}

fn source_key(source: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(b"chase-source-alias");
    h.write(source.as_bytes());
    h.finish()
}

impl ProgramCache {
    /// An empty cache with the given caps.
    pub fn new(config: ProgramCacheConfig) -> Self {
        ProgramCache {
            config,
            inner: Mutex::new(ProgramCacheInner::default()),
            counters: CacheCounters::default(),
        }
    }

    /// The shared counters (telemetry splicing, tests).
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Per-tenant accounting snapshot, sorted by tenant name.
    pub fn tenant_usage(&self) -> Vec<(String, TenantUsage)> {
        let inner = self.inner.lock().expect("program cache poisoned");
        let mut rows: Vec<_> = inner.tenants.iter().map(|(t, u)| (t.clone(), *u)).collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("program cache poisoned")
            .by_fp
            .len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total approximate bytes of the resident entries.
    pub fn resident_bytes(&self) -> usize {
        self.inner
            .lock()
            .expect("program cache poisoned")
            .total_bytes
    }

    /// Looks up a client-supplied fingerprint (`program_ref`
    /// submission). A miss means the client must fall back to full
    /// source; it is *not* counted as a cache miss — no compile was
    /// avoidable.
    pub fn lookup_ref(&self, fp: ProgramFingerprint, tenant: &str) -> Option<Arc<CompiledProgram>> {
        let mut inner = self.inner.lock().expect("program cache poisoned");
        let hit = inner.touch(fp);
        let usage = inner.tenants.entry(tenant.to_string()).or_default();
        usage.lookups += 1;
        if hit.is_some() {
            usage.hits += 1;
            CacheCounters::bump(&self.counters.hits);
        }
        hit
    }

    /// Resolves program source to a compiled bundle: byte-identical
    /// resubmissions hit via the source alias with zero parse work;
    /// otherwise one compile runs and the result is cached (deduped by
    /// canonical fingerprint, so reformatted equivalents share one
    /// entry).
    pub fn resolve_source(&self, source: &str, tenant: &str) -> Result<Resolved, CoreError> {
        let key = source_key(source);
        {
            let mut inner = self.inner.lock().expect("program cache poisoned");
            let usage = inner.tenants.entry(tenant.to_string()).or_default();
            usage.lookups += 1;
            if let Some(fp) = inner.source_alias.get(&key).copied() {
                if let Some(program) = inner.touch(fp) {
                    inner.tenants.entry(tenant.to_string()).or_default().hits += 1;
                    CacheCounters::bump(&self.counters.hits);
                    return Ok(Resolved {
                        program,
                        resolution: Resolution::Hit,
                        evicted: 0,
                    });
                }
                // Alias survived its entry's eviction window — treat
                // as a plain miss below.
            }
        }
        // Compile outside the lock: admission threads of other
        // connections keep hitting while we build.
        CacheCounters::bump(&self.counters.misses);
        CacheCounters::bump(&self.counters.compiles);
        let compiled = compile(source)?;
        let fp = compiled.fingerprint();
        let bytes = compiled.approx_bytes();
        let mut inner = self.inner.lock().expect("program cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        let program = match inner.by_fp.get_mut(&fp) {
            // A reformatted equivalent (or a racing compile) already
            // landed: keep the incumbent so every session shares one
            // allocation, just record the new alias.
            Some(entry) => {
                entry.last_used = tick;
                Arc::clone(&entry.program)
            }
            None => {
                inner.total_bytes += bytes;
                inner.by_fp.insert(
                    fp,
                    Entry {
                        program: Arc::clone(&compiled),
                        bytes,
                        last_used: tick,
                    },
                );
                compiled
            }
        };
        inner.source_alias.insert(key, fp);
        let usage = inner.tenants.entry(tenant.to_string()).or_default();
        usage.compiled_bytes += bytes as u64;
        let evicted = inner.evict_over_caps(&self.config);
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Ok(Resolved {
            program,
            resolution: Resolution::Compiled,
            evicted,
        })
    }
}

/// Memoized termination verdicts: fingerprint × decider class →
/// definitive verdict. Bounded FIFO-ish (LRU by use-stamp) at
/// `max_entries`; `Unknown` is never stored.
pub struct DecideCache {
    max_entries: usize,
    inner: Mutex<DecideCacheInner>,
}

#[derive(Default)]
struct DecideCacheInner {
    verdicts: HashMap<(ProgramFingerprint, &'static str), (TerminationVerdict, u64)>,
    tick: u64,
}

impl DecideCache {
    /// An empty cache bounded at `max_entries` verdicts.
    pub fn new(max_entries: usize) -> Self {
        DecideCache {
            max_entries: max_entries.max(1),
            inner: Mutex::new(DecideCacheInner::default()),
        }
    }

    /// The memoized verdict for `fp` under `class`, if any.
    pub fn get(&self, fp: ProgramFingerprint, class: &'static str) -> Option<TerminationVerdict> {
        let mut inner = self.inner.lock().expect("decide cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.verdicts.get_mut(&(fp, class)).map(|slot| {
            slot.1 = tick;
            slot.0.clone()
        })
    }

    /// Memoizes a definitive verdict; `Unknown` is dropped on the
    /// floor (it reflects the request's budget, not the program).
    pub fn insert(
        &self,
        fp: ProgramFingerprint,
        class: &'static str,
        verdict: &TerminationVerdict,
    ) {
        if verdict.is_unknown() {
            return;
        }
        let mut inner = self.inner.lock().expect("decide cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.verdicts.insert((fp, class), (verdict.clone(), tick));
        while inner.verdicts.len() > self.max_entries {
            let victim = inner
                .verdicts
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| *k)
                .expect("non-empty cache has an LRU entry");
            inner.verdicts.remove(&victim);
        }
    }

    /// Memoized verdicts currently resident.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("decide cache poisoned")
            .verdicts
            .len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The server's cache pair, shared across connection handlers and
/// session runners.
pub struct Caches {
    /// Compiled programs, consulted at admission.
    pub programs: ProgramCache,
    /// Memoized decide verdicts.
    pub decide: DecideCache,
}

impl Default for Caches {
    fn default() -> Self {
        Caches {
            programs: ProgramCache::new(ProgramCacheConfig::default()),
            decide: DecideCache::new(1024),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FINITE: &str = "R(a,b).\nR(x,y) -> S(x).\n";

    #[test]
    fn second_resolution_of_identical_source_is_a_hit() {
        let cache = ProgramCache::new(ProgramCacheConfig::default());
        let a = cache.resolve_source(FINITE, "t").unwrap();
        let b = cache.resolve_source(FINITE, "t").unwrap();
        assert_eq!(a.resolution, Resolution::Compiled);
        assert_eq!(b.resolution, Resolution::Hit);
        assert!(Arc::ptr_eq(&a.program, &b.program));
        let [hits, misses, _, compiles, ..] = cache.counters().snapshot();
        assert_eq!((hits, misses, compiles), (1, 1, 1));
    }

    #[test]
    fn reformatted_source_shares_the_canonical_entry() {
        let cache = ProgramCache::new(ProgramCacheConfig::default());
        let a = cache.resolve_source(FINITE, "t").unwrap();
        let b = cache
            .resolve_source("  R( a ,b ).\nR(u,w)->S(u).", "t")
            .unwrap();
        // The reformatted text pays one compile but lands on the same
        // fingerprint and shares the incumbent allocation.
        assert_eq!(b.resolution, Resolution::Compiled);
        assert!(Arc::ptr_eq(&a.program, &b.program));
        assert_eq!(cache.len(), 1);
        // And from now on the reformatted text hits by alias too.
        let c = cache
            .resolve_source("  R( a ,b ).\nR(u,w)->S(u).", "t")
            .unwrap();
        assert_eq!(c.resolution, Resolution::Hit);
    }

    #[test]
    fn lookup_ref_round_trips_and_misses_unknown_fingerprints() {
        let cache = ProgramCache::new(ProgramCacheConfig::default());
        let a = cache.resolve_source(FINITE, "t").unwrap();
        let fp = a.program.fingerprint();
        assert!(cache.lookup_ref(fp, "t").is_some());
        assert!(cache
            .lookup_ref(ProgramFingerprint(0xDEAD_BEEF), "t")
            .is_none());
    }

    #[test]
    fn entry_cap_evicts_least_recently_used() {
        let cache = ProgramCache::new(ProgramCacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        let a = cache.resolve_source("A(a).\nA(x) -> B(x).", "t").unwrap();
        let fp_a = a.program.fingerprint();
        cache.resolve_source("C(c).\nC(x) -> D(x).", "t").unwrap();
        // Touch `a` so the C program is the LRU victim.
        assert!(cache.lookup_ref(fp_a, "t").is_some());
        let c = cache.resolve_source("E(e).\nE(x) -> F(x).", "t").unwrap();
        assert_eq!(c.evicted, 1);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().snapshot()[2], 1);
        // `a` survived (and this lookup re-touches it).
        assert!(cache.lookup_ref(fp_a, "t").is_some());
        // The evicted program's source alias is gone too: resubmitting
        // it compiles again.
        let again = cache.resolve_source("C(c).\nC(x) -> D(x).", "t").unwrap();
        assert_eq!(again.resolution, Resolution::Compiled);
    }

    #[test]
    fn byte_cap_evicts_but_never_empties() {
        let cache = ProgramCache::new(ProgramCacheConfig {
            max_entries: 64,
            max_bytes: 1, // everything is oversized
        });
        cache.resolve_source("A(a).\nA(x) -> B(x).", "t").unwrap();
        cache.resolve_source("C(c).\nC(x) -> D(x).", "t").unwrap();
        // Over-cap, but the most recent entry is always kept.
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn tenant_accounting_attributes_lookups_and_hits() {
        let cache = ProgramCache::new(ProgramCacheConfig::default());
        cache.resolve_source(FINITE, "alice").unwrap();
        cache.resolve_source(FINITE, "bob").unwrap();
        cache.resolve_source(FINITE, "bob").unwrap();
        let rows = cache.tenant_usage();
        assert_eq!(rows.len(), 2);
        let alice = &rows[0];
        let bob = &rows[1];
        assert_eq!(
            (alice.0.as_str(), alice.1.lookups, alice.1.hits),
            ("alice", 1, 0)
        );
        assert_eq!((bob.0.as_str(), bob.1.lookups, bob.1.hits), ("bob", 2, 2));
        assert!(alice.1.compiled_bytes > 0);
        assert_eq!(bob.1.compiled_bytes, 0);
    }

    #[test]
    fn decide_cache_memoizes_definitive_verdicts_only() {
        let cache = DecideCache::new(8);
        let fp = ProgramFingerprint(7);
        assert!(cache.get(fp, "sticky").is_none());
        cache.insert(
            fp,
            "sticky",
            &TerminationVerdict::Unknown {
                reason: "budget".into(),
            },
        );
        assert!(cache.get(fp, "sticky").is_none());

        let verdict = chase_core::compile::compile(FINITE)
            .ok()
            .map(|p| {
                chase_termination::decide(
                    p.tgd_set(),
                    p.vocab(),
                    &chase_termination::DeciderConfig::default(),
                )
            })
            .unwrap();
        assert!(!verdict.is_unknown());
        cache.insert(fp, "sticky", &verdict);
        assert!(cache.get(fp, "sticky").is_some());
        // Keyed by class: a different dispatch misses.
        assert!(cache.get(fp, "guarded").is_none());
    }

    #[test]
    fn decide_cache_is_bounded() {
        let cache = DecideCache::new(2);
        let verdict = chase_core::compile::compile(FINITE)
            .ok()
            .map(|p| {
                chase_termination::decide(
                    p.tgd_set(),
                    p.vocab(),
                    &chase_termination::DeciderConfig::default(),
                )
            })
            .unwrap();
        for i in 0..5 {
            cache.insert(ProgramFingerprint(i), "sticky", &verdict);
        }
        assert_eq!(cache.len(), 2);
    }
}
