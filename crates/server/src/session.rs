//! Session execution: one admitted request running on a scheduler
//! runner, streaming telemetry back through its connection and ending
//! in exactly one `result` line.
//!
//! Degradation contract: telemetry is best-effort, results are not. A
//! session whose connection writes start failing (client gone, or an
//! injected [`FaultPlan::socket_fail_after`]) keeps running, stops
//! sending events, counts what it dropped, and still attempts the
//! final `result` line (which reports `events_dropped`). A session
//! that panics ([`TaskError::Panicked`]) reports `status:"panicked"`
//! and costs nobody else anything — the runner and the server live on.
//!
//! [`FaultPlan::socket_fail_after`]: chase_engine::faults::FaultPlan::socket_fail_after
//! [`TaskError::Panicked`]: chase_engine::task::TaskError::Panicked

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use chase_core::compile::CompiledProgram;
use chase_engine::task::{run_chase_task, ChaseTaskSpec, ProgramInput, TaskError};
use chase_telemetry::{names, Event, LineObserver, NullObserver};
use chase_termination::{decide_observed, decider_class, DeciderConfig, TerminationVerdict};

use crate::cache::Caches;
use crate::protocol::{outcome_name, DecideRequest, Reply, SessionRequest};
use crate::scheduler::RunnerCtx;
use crate::server::ConnWriter;

/// Event-streaming state shared between a session and its observer
/// closure: how many telemetry lines went out, how many were dropped
/// after the connection degraded (for real or by injection).
struct EventStream<'a> {
    conn: &'a Arc<ConnWriter>,
    id: &'a str,
    fail_after: Option<u64>,
    sent: Cell<u64>,
    dropped: Cell<u64>,
    degraded: Cell<bool>,
}

impl EventStream<'_> {
    fn send(&self, event_json: &str) {
        if self.degraded.get() {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        // The injected socket fault mirrors a real mid-stream write
        // failure: after `n` successful event writes, the "socket"
        // breaks and stays broken for this session.
        if self.fail_after.is_some_and(|n| self.sent.get() >= n) {
            self.degraded.set(true);
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        if self.conn.send_event(self.id, event_json) {
            self.sent.set(self.sent.get() + 1);
        } else {
            self.degraded.set(true);
            self.dropped.set(self.dropped.get() + 1);
        }
    }

    /// Splices a named counter into the stream (if telemetry is on for
    /// this session, which the caller gates).
    fn send_counter(&self, name: &'static str, delta: u64) {
        let mut buf = String::with_capacity(64);
        Event::CounterAdd { name, delta }.write_json(&mut buf);
        self.send(&buf);
    }
}

/// Runs one chase session to its terminal `result` line. The program
/// was compiled (or cache-resolved) at admission; the session shares
/// the `Arc` and does zero parse/plan work of its own.
pub fn run_chase_session(
    req: &SessionRequest,
    program: &Arc<CompiledProgram>,
    conn: &Arc<ConnWriter>,
    ctx: &mut RunnerCtx,
) {
    let started = Instant::now();
    let spec = ChaseTaskSpec {
        program: ProgramInput::Compiled(Arc::clone(program)),
        engine: req.engine,
        budget: req.budget,
        deadline: req.deadline,
        threads: req.threads,
        faults: req.faults,
        cancel: req.cancel.clone(),
    };
    let stream = EventStream {
        conn,
        id: &req.id,
        fail_after: req.faults.socket_fail_after,
        sent: Cell::new(0),
        dropped: Cell::new(0),
        degraded: Cell::new(false),
    };
    let pool = Some(ctx.pool_for(req.threads));
    let result = if req.telemetry {
        let mut obs = LineObserver::new(|line: &str| stream.send(line));
        run_chase_task(&spec, &mut obs, pool)
    } else {
        run_chase_task(&spec, &mut NullObserver, pool)
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let line = match result {
        Ok(out) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "ok")
            .str("outcome", outcome_name(out.outcome))
            .num("steps", out.steps as u64)
            .num("atoms", out.atoms() as u64)
            .str("fingerprint", &format!("{:016x}", out.fingerprint()))
            .num("events_sent", stream.sent.get())
            .num("events_dropped", stream.dropped.get())
            .num("elapsed_ms", elapsed_ms)
            .finish(),
        Err(TaskError::Parse(msg)) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "parse_error")
            .str("error", &msg)
            .num("elapsed_ms", elapsed_ms)
            .finish(),
        Err(TaskError::Panicked(msg)) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "panicked")
            .str("error", &msg)
            .num("elapsed_ms", elapsed_ms)
            .finish(),
    };
    // Best effort: a fully dead connection can't carry the result
    // either, but the session still completed server-side.
    conn.send_line(&line);
}

/// Runs one decide session to its terminal `result` line, consulting
/// the decide-memoization cache first.
///
/// Verdicts are pure functions of the rule set given a dispatch
/// policy, so the cache keys by program fingerprint × decider class; a
/// hit replies without running any decider (the `result` line carries
/// `cached:true` and the telemetry stream a `decide_cache.hits`
/// counter). Only definitive verdicts are memoized — `Unknown`
/// reflects the request's deadline/cancel budget, not the program.
pub fn run_decide_session(
    req: &DecideRequest,
    program: &Arc<CompiledProgram>,
    conn: &Arc<ConnWriter>,
    caches: &Caches,
) {
    let started = Instant::now();
    let config = DeciderConfig {
        deadline: req.deadline,
        cancel: req.cancel.clone(),
        ..DeciderConfig::default()
    };
    let stream = EventStream {
        conn,
        id: &req.id,
        fail_after: None,
        sent: Cell::new(0),
        dropped: Cell::new(0),
        degraded: Cell::new(false),
    };
    let set = program.tgd_set();
    let vocab = program.vocab();
    let fp = program.fingerprint();
    let class = decider_class(set);
    let counters = caches.programs.counters();
    let (verdict, cached) = match caches.decide.get(fp, class) {
        Some(verdict) => {
            counters
                .decide_hits
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if req.telemetry {
                stream.send_counter(names::DECIDE_CACHE_HITS, 1);
            }
            (verdict, true)
        }
        None => {
            counters
                .decide_misses
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if req.telemetry {
                stream.send_counter(names::DECIDE_CACHE_MISSES, 1);
            }
            let verdict = if req.telemetry {
                let mut obs = LineObserver::new(|line: &str| stream.send(line));
                decide_observed(set, vocab, &config, &mut obs)
            } else {
                decide_observed(set, vocab, &config, &mut NullObserver)
            };
            caches.decide.insert(fp, class, &verdict);
            (verdict, false)
        }
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let reply = Reply::new("result")
        .str("id", &req.id)
        .str("status", "ok")
        .str(
            "verdict",
            match &verdict {
                TerminationVerdict::AllInstancesTerminating(_) => "terminating",
                TerminationVerdict::NonTerminating(_) => "non_terminating",
                TerminationVerdict::Unknown { .. } => "unknown",
            },
        )
        .bool("cached", cached)
        .num("events_sent", stream.sent.get())
        .num("events_dropped", stream.dropped.get())
        .num("elapsed_ms", elapsed_ms);
    let line = match verdict {
        TerminationVerdict::Unknown { reason } => reply.str("reason", &reason).finish(),
        _ => reply.finish(),
    };
    conn.send_line(&line);
}
