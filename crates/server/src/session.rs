//! Session execution: one admitted request running on a scheduler
//! runner, streaming telemetry back through its connection and ending
//! in exactly one `result` line.
//!
//! Degradation contract: telemetry is best-effort, results are not. A
//! session whose connection writes start failing (client gone, or an
//! injected [`FaultPlan::socket_fail_after`]) keeps running, stops
//! sending events, counts what it dropped, and still attempts the
//! final `result` line (which reports `events_dropped`). A session
//! that panics ([`TaskError::Panicked`]) reports `status:"panicked"`
//! and costs nobody else anything — the runner and the server live on.
//!
//! [`FaultPlan::socket_fail_after`]: chase_engine::faults::FaultPlan::socket_fail_after
//! [`TaskError::Panicked`]: chase_engine::task::TaskError::Panicked

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use chase_engine::task::{run_chase_task, ChaseTaskSpec, TaskError};
use chase_telemetry::{LineObserver, NullObserver};
use chase_termination::{decide_observed, DeciderConfig, TerminationVerdict};

use crate::protocol::{outcome_name, DecideRequest, Reply, SessionRequest};
use crate::scheduler::RunnerCtx;
use crate::server::ConnWriter;

/// Event-streaming state shared between a session and its observer
/// closure: how many telemetry lines went out, how many were dropped
/// after the connection degraded (for real or by injection).
struct EventStream<'a> {
    conn: &'a Arc<ConnWriter>,
    id: &'a str,
    fail_after: Option<u64>,
    sent: Cell<u64>,
    dropped: Cell<u64>,
    degraded: Cell<bool>,
}

impl EventStream<'_> {
    fn send(&self, event_json: &str) {
        if self.degraded.get() {
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        // The injected socket fault mirrors a real mid-stream write
        // failure: after `n` successful event writes, the "socket"
        // breaks and stays broken for this session.
        if self.fail_after.is_some_and(|n| self.sent.get() >= n) {
            self.degraded.set(true);
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        if self.conn.send_event(self.id, event_json) {
            self.sent.set(self.sent.get() + 1);
        } else {
            self.degraded.set(true);
            self.dropped.set(self.dropped.get() + 1);
        }
    }
}

/// Runs one chase session to its terminal `result` line.
pub fn run_chase_session(req: &SessionRequest, conn: &Arc<ConnWriter>, ctx: &mut RunnerCtx) {
    let started = Instant::now();
    let spec = ChaseTaskSpec {
        source: req.program.clone(),
        engine: req.engine,
        budget: req.budget,
        deadline: req.deadline,
        threads: req.threads,
        faults: req.faults,
        cancel: req.cancel.clone(),
    };
    let stream = EventStream {
        conn,
        id: &req.id,
        fail_after: req.faults.socket_fail_after,
        sent: Cell::new(0),
        dropped: Cell::new(0),
        degraded: Cell::new(false),
    };
    let pool = Some(ctx.pool_for(req.threads));
    let result = if req.telemetry {
        let mut obs = LineObserver::new(|line: &str| stream.send(line));
        run_chase_task(&spec, &mut obs, pool)
    } else {
        run_chase_task(&spec, &mut NullObserver, pool)
    };
    let elapsed_ms = started.elapsed().as_millis() as u64;
    let line = match result {
        Ok(out) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "ok")
            .str("outcome", outcome_name(out.outcome))
            .num("steps", out.steps as u64)
            .num("atoms", out.atoms() as u64)
            .str("fingerprint", &format!("{:016x}", out.fingerprint()))
            .num("events_sent", stream.sent.get())
            .num("events_dropped", stream.dropped.get())
            .num("elapsed_ms", elapsed_ms)
            .finish(),
        Err(TaskError::Parse(msg)) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "parse_error")
            .str("error", &msg)
            .num("elapsed_ms", elapsed_ms)
            .finish(),
        Err(TaskError::Panicked(msg)) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "panicked")
            .str("error", &msg)
            .num("elapsed_ms", elapsed_ms)
            .finish(),
    };
    // Best effort: a fully dead connection can't carry the result
    // either, but the session still completed server-side.
    conn.send_line(&line);
}

/// Runs one decide session to its terminal `result` line.
pub fn run_decide_session(req: &DecideRequest, conn: &Arc<ConnWriter>) {
    let started = Instant::now();
    let config = DeciderConfig {
        deadline: req.deadline,
        cancel: req.cancel.clone(),
        ..DeciderConfig::default()
    };
    let stream = EventStream {
        conn,
        id: &req.id,
        fail_after: None,
        sent: Cell::new(0),
        dropped: Cell::new(0),
        degraded: Cell::new(false),
    };
    // Parse errors surface as a typed result, exactly like chase
    // sessions; decide panics are caught by the runner boundary.
    let mut vocab = chase_core::vocab::Vocabulary::new();
    let parsed = chase_core::parser::parse_program(&req.program, &mut vocab)
        .map_err(|e| e.to_string())
        .and_then(|program| program.tgd_set(&vocab).map_err(|e| e.to_string()));
    let line = match parsed {
        Err(msg) => Reply::new("result")
            .str("id", &req.id)
            .str("status", "parse_error")
            .str("error", &msg)
            .finish(),
        Ok(set) => {
            let verdict = if req.telemetry {
                let mut obs = LineObserver::new(|line: &str| stream.send(line));
                decide_observed(&set, &vocab, &config, &mut obs)
            } else {
                decide_observed(&set, &vocab, &config, &mut NullObserver)
            };
            let elapsed_ms = started.elapsed().as_millis() as u64;
            let reply = Reply::new("result")
                .str("id", &req.id)
                .str("status", "ok")
                .str(
                    "verdict",
                    match &verdict {
                        TerminationVerdict::AllInstancesTerminating(_) => "terminating",
                        TerminationVerdict::NonTerminating(_) => "non_terminating",
                        TerminationVerdict::Unknown { .. } => "unknown",
                    },
                )
                .num("events_sent", stream.sent.get())
                .num("events_dropped", stream.dropped.get())
                .num("elapsed_ms", elapsed_ms);
            match verdict {
                TerminationVerdict::Unknown { reason } => reply.str("reason", &reason).finish(),
                _ => reply.finish(),
            }
        }
    };
    conn.send_line(&line);
}
