//! The resident server: socket accept loop, per-connection protocol
//! handling, session registry and graceful drain.
//!
//! One process, one [`Scheduler`]; any number of client connections,
//! each carrying any number of interleaved sessions. Replies for all
//! sessions of a connection are multiplexed onto its single writer
//! (every line carries the session `id`), so clients demultiplex by
//! `id` rather than by stream.
//!
//! Shutdown is an in-band `{"op":"shutdown"}` request (any connection
//! may send it — the server fleet's supervisor owns the socket, so
//! in-band is the honest interface in a `std`-only process with no
//! signal-handler access): admission stops immediately with typed
//! `shutting_down` replies, queued and running sessions finish and
//! deliver their results, runner threads exit, the accept loop wakes
//! and returns. Every session's [`CancelToken`] is registered in a
//! [`CancelGroup`], so the *abortive* variant
//! (`{"op":"shutdown","mode":"abort"}`) is exactly one `cancel_all`
//! call on top of the graceful path: every live session winds down
//! with `outcome:"cancelled"`, results still delivered.
//!
//! Admission also owns program resolution: the request's `program` /
//! `program_ref` is resolved against the content-addressed
//! [`ProgramCache`](crate::cache::ProgramCache) *before* a scheduler
//! slot is taken, so repeated rule sets share one compiled bundle and
//! malformed programs are rejected with a typed `parse_error` result
//! without ever occupying a runner.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use chase_core::cancel::{CancelGroup, CancelToken};
use chase_core::compile::{CompiledProgram, ProgramFingerprint};
use chase_telemetry::{names, Event};

use crate::cache::{Caches, DecideCache, ProgramCache, ProgramCacheConfig, Resolution};
use crate::protocol::{event_reply, parse_request, Reply, Request};
use crate::scheduler::{Rejected, RunnerCtx, Scheduler, SchedulerConfig};
use crate::session::{run_chase_session, run_decide_session};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7878` (port 0 picks a free one).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH`, `tcp:ADDR`, a bare path (contains `/`) or a
    /// bare TCP address.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if s.contains('/') {
            return Ok(Endpoint::Unix(PathBuf::from(s)));
        }
        if s.contains(':') {
            return Ok(Endpoint::Tcp(s.to_string()));
        }
        Err(format!(
            "cannot interpret endpoint '{s}': use unix:PATH or tcp:HOST:PORT"
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Scheduler knobs (runners, queue caps, retry hint).
    pub scheduler: SchedulerConfig,
    /// Program-cache caps (entries, bytes).
    pub cache: CacheConfig,
}

/// Cache sizing for [`ServerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Compiled-program cache caps.
    pub programs: ProgramCacheConfig,
    /// Maximum memoized decide verdicts.
    pub decide_entries: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            programs: ProgramCacheConfig::default(),
            decide_entries: 1024,
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            Stream::Tcp(s) => Ok((Box::new(s.try_clone()?), Box::new(s))),
            Stream::Unix(s) => Ok((Box::new(s.try_clone()?), Box::new(s))),
        }
    }
}

/// One connection's shared, mutex-guarded line writer. All sessions of
/// the connection funnel through it; a write failure flips it into
/// degraded mode (silently dropping further lines — the client is
/// gone) after warning once on stderr.
pub struct ConnWriter {
    inner: Mutex<WriterInner>,
}

struct WriterInner {
    stream: Box<dyn Write + Send>,
    degraded: bool,
    warned: bool,
    dropped: u64,
}

impl ConnWriter {
    fn new(stream: Box<dyn Write + Send>) -> Self {
        ConnWriter {
            inner: Mutex::new(WriterInner {
                stream,
                degraded: false,
                warned: false,
                dropped: 0,
            }),
        }
    }

    /// Writes one line (newline appended). Returns `false` once the
    /// connection has degraded; the caller decides what dropping a
    /// line means (sessions count dropped events, results are
    /// best-effort).
    pub fn send_line(&self, line: &str) -> bool {
        let mut inner = self.inner.lock().expect("connection writer poisoned");
        if inner.degraded {
            inner.dropped += 1;
            return false;
        }
        let wrote = inner
            .stream
            .write_all(line.as_bytes())
            .and_then(|()| inner.stream.write_all(b"\n"))
            .and_then(|()| inner.stream.flush());
        if let Err(e) = wrote {
            inner.degraded = true;
            inner.dropped += 1;
            if !inner.warned {
                inner.warned = true;
                eprintln!("chase-server: connection write failed ({e}); dropping further replies");
            }
            return false;
        }
        true
    }

    /// Sends one spliced telemetry event line for session `id`.
    pub fn send_event(&self, id: &str, event_json: &str) -> bool {
        self.send_line(&event_reply(id, event_json))
    }

    /// Lines dropped since the connection degraded.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .expect("connection writer poisoned")
            .dropped
    }
}

/// Live-session registry: session id → cancel token, plus the group
/// that lets shutdown reach everything at once.
#[derive(Default)]
struct Registry {
    live: Mutex<HashMap<String, CancelToken>>,
    group: CancelGroup,
}

impl Registry {
    /// Registers a session's token; `false` if the id is already live
    /// (duplicate ids are a protocol error — sessions are keyed by id).
    fn insert(&self, id: &str, token: CancelToken) -> bool {
        let mut live = self.live.lock().expect("registry poisoned");
        if live.contains_key(id) {
            return false;
        }
        self.group.adopt(token.clone());
        live.insert(id.to_string(), token);
        true
    }

    fn cancel(&self, id: &str) -> bool {
        match self.live.lock().expect("registry poisoned").get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    fn remove(&self, id: &str) {
        self.live.lock().expect("registry poisoned").remove(id);
        self.group.prune();
    }

    /// Abortive shutdown: one call trips every live session's token
    /// (queued sessions registered at admission included), so each
    /// winds down with `outcome:"cancelled"` and still delivers its
    /// result line.
    fn abort_all(&self) {
        self.group.cancel_all();
    }
}

/// The resident chase server. [`Server::bind`] then [`Server::run`];
/// `run` returns after a graceful drain.
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    scheduler: Arc<Scheduler>,
    registry: Arc<Registry>,
    caches: Arc<Caches>,
    shutting_down: Arc<AtomicBool>,
}

impl Server {
    /// Binds the endpoint (an existing unix socket path is unlinked
    /// first) and starts the scheduler's runner threads.
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> std::io::Result<Server> {
        let (listener, endpoint) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                // Re-render with the actual port (`:0` binds pick one).
                let actual = Endpoint::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), actual)
            }
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Endpoint::Unix(path.clone()),
                )
            }
        };
        Ok(Server {
            listener,
            endpoint,
            scheduler: Arc::new(Scheduler::new(config.scheduler)),
            registry: Arc::new(Registry::default()),
            caches: Arc::new(Caches {
                programs: ProgramCache::new(config.cache.programs),
                decide: DecideCache::new(config.cache.decide_entries),
            }),
            shutting_down: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound endpoint (with the real port for `:0` TCP binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Serves until a `shutdown` request completes its drain. Each
    /// connection gets its own handler thread; sessions run on the
    /// scheduler regardless of which connection submitted them.
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        loop {
            let stream = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("chase-server: accept failed: {e}");
                    continue;
                }
            };
            let ctx = HandlerCtx {
                scheduler: Arc::clone(&self.scheduler),
                registry: Arc::clone(&self.registry),
                caches: Arc::clone(&self.caches),
                shutting_down: Arc::clone(&self.shutting_down),
                endpoint: self.endpoint.clone(),
            };
            handlers.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
        }
        // Drain: finish queued + running sessions, join runners, then
        // the handler threads (their clients have their results).
        self.scheduler.shutdown();
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

struct HandlerCtx {
    scheduler: Arc<Scheduler>,
    registry: Arc<Registry>,
    caches: Arc<Caches>,
    shutting_down: Arc<AtomicBool>,
    endpoint: Endpoint,
}

impl HandlerCtx {
    /// Wakes the blocking accept loop after shutdown was flagged.
    fn poke_acceptor(&self) {
        let _ = match &self.endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(drop),
            Endpoint::Unix(path) => UnixStream::connect(path).map(drop),
        };
    }
}

fn handle_connection(stream: Stream, ctx: &HandlerCtx) {
    let (read, write) = match stream.split() {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("chase-server: cannot split connection: {e}");
            return;
        }
    };
    let conn = Arc::new(ConnWriter::new(write));
    for line in BufReader::new(read).lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(msg) => {
                conn.send_line(&Reply::new("error").str("message", &msg).finish());
            }
            Ok(Request::Ping) => {
                conn.send_line(&Reply::new("pong").finish());
            }
            Ok(Request::Cancel { id }) => {
                let hit = ctx.registry.cancel(&id);
                conn.send_line(
                    &Reply::new("cancel_ack")
                        .str("id", &id)
                        .str("known", if hit { "true" } else { "false" })
                        .finish(),
                );
            }
            Ok(Request::Shutdown { abort }) => {
                conn.send_line(
                    &Reply::new("shutdown_ack")
                        .str("mode", if abort { "abort" } else { "graceful" })
                        .num("queued", ctx.scheduler.queued() as u64)
                        .num("running", ctx.scheduler.running() as u64)
                        .finish(),
                );
                if !ctx.shutting_down.swap(true, Ordering::SeqCst) {
                    ctx.poke_acceptor();
                }
                if abort {
                    ctx.registry.abort_all();
                }
                // The reader keeps serving pings/cancels for this
                // connection until the client hangs up; admission is
                // already closed.
            }
            Ok(Request::Chase(req)) => {
                let program = match resolve_program(
                    ctx,
                    &conn,
                    &req.id,
                    &req.tenant,
                    req.telemetry,
                    req.program.as_deref(),
                    req.program_ref,
                ) {
                    Some(program) => program,
                    None => continue,
                };
                let fp_hex = program.fingerprint().to_hex();
                let (id, tenant, token) = (req.id.clone(), req.tenant.clone(), req.cancel.clone());
                submit_session(ctx, &conn, id, tenant, token, &fp_hex, {
                    let conn = Arc::clone(&conn);
                    let registry = Arc::clone(&ctx.registry);
                    move |runner: &mut RunnerCtx| {
                        run_chase_session(&req, &program, &conn, runner);
                        registry.remove(&req.id);
                    }
                });
            }
            Ok(Request::Decide(req)) => {
                let program = match resolve_program(
                    ctx,
                    &conn,
                    &req.id,
                    &req.tenant,
                    req.telemetry,
                    req.program.as_deref(),
                    req.program_ref,
                ) {
                    Some(program) => program,
                    None => continue,
                };
                let fp_hex = program.fingerprint().to_hex();
                let (id, tenant, token) = (req.id.clone(), req.tenant.clone(), req.cancel.clone());
                submit_session(ctx, &conn, id, tenant, token, &fp_hex, {
                    let conn = Arc::clone(&conn);
                    let registry = Arc::clone(&ctx.registry);
                    let caches = Arc::clone(&ctx.caches);
                    move |_runner: &mut RunnerCtx| {
                        run_decide_session(&req, &program, &conn, &caches);
                        registry.remove(&req.id);
                    }
                });
            }
        }
    }
}

/// Splices one cache counter into the session's telemetry stream (a
/// regular `event` line carrying a `counter_add`, so `chasectl stats`
/// aggregates it with the engine's own counters).
fn emit_counter(conn: &ConnWriter, id: &str, telemetry: bool, name: &'static str, delta: u64) {
    if !telemetry || delta == 0 {
        return;
    }
    let mut buf = String::with_capacity(64);
    Event::CounterAdd { name, delta }.write_json(&mut buf);
    conn.send_event(id, &buf);
}

/// Admission-time program resolution: `program_ref` against the cache
/// first, then source (alias hit or compile-and-insert). Returns
/// `None` when a terminal reply has already been sent — shutdown gate,
/// `unknown_program` miss, typed `parse_error`, or a contained compile
/// panic. In every `None` case the request never touched the
/// scheduler: a tenant spamming bad input cannot crowd out healthy
/// sessions.
fn resolve_program(
    ctx: &HandlerCtx,
    conn: &Arc<ConnWriter>,
    id: &str,
    tenant: &str,
    telemetry: bool,
    source: Option<&str>,
    program_ref: Option<ProgramFingerprint>,
) -> Option<Arc<CompiledProgram>> {
    // Gate before compiling: a draining server should not burn CPU on
    // admission work it will refuse anyway.
    if ctx.shutting_down.load(Ordering::SeqCst) {
        conn.send_line(&Reply::new("shutting_down").str("id", id).finish());
        return None;
    }
    if let Some(fp) = program_ref {
        if let Some(program) = ctx.caches.programs.lookup_ref(fp, tenant) {
            emit_counter(conn, id, telemetry, names::PROGRAM_CACHE_HITS, 1);
            return Some(program);
        }
        if source.is_none() {
            conn.send_line(
                &Reply::new("unknown_program")
                    .str("id", id)
                    .str("program_ref", &fp.to_hex())
                    .finish(),
            );
            return None;
        }
        // A source fallback rode along: resolve it below (one round
        // trip saved versus replying `unknown_program`).
    }
    let source = source.expect("protocol guarantees program or program_ref");
    let resolved = catch_unwind(AssertUnwindSafe(|| {
        ctx.caches.programs.resolve_source(source, tenant)
    }));
    match resolved {
        Err(_) => {
            conn.send_line(
                &Reply::new("result")
                    .str("id", id)
                    .str("status", "panicked")
                    .str("error", "program compilation panicked")
                    .num("elapsed_ms", 0)
                    .finish(),
            );
            None
        }
        Ok(Err(e)) => {
            // Malformed programs are rejected here, before enqueue;
            // the reply shape matches the old in-session parse_error
            // result so clients are none the wiser.
            conn.send_line(
                &Reply::new("result")
                    .str("id", id)
                    .str("status", "parse_error")
                    .str("error", &e.to_string())
                    .num("elapsed_ms", 0)
                    .finish(),
            );
            None
        }
        Ok(Ok(resolved)) => {
            match resolved.resolution {
                Resolution::Hit => {
                    emit_counter(conn, id, telemetry, names::PROGRAM_CACHE_HITS, 1);
                }
                Resolution::Compiled => {
                    emit_counter(conn, id, telemetry, names::PROGRAM_CACHE_MISSES, 1);
                    emit_counter(conn, id, telemetry, names::PROGRAM_COMPILES, 1);
                }
            }
            emit_counter(
                conn,
                id,
                telemetry,
                names::PROGRAM_CACHE_EVICTIONS,
                resolved.evicted,
            );
            Some(resolved.program)
        }
    }
}

/// Admission control for one session: duplicate-id check, shutdown
/// gate, scheduler submit with typed shed replies. `token` is a clone
/// of the token the session will actually poll — registering anything
/// else would make `cancel` requests no-ops.
fn submit_session<F>(
    ctx: &HandlerCtx,
    conn: &Arc<ConnWriter>,
    id: String,
    tenant: String,
    token: CancelToken,
    program_fp: &str,
    job: F,
) where
    F: FnOnce(&mut RunnerCtx) + Send + 'static,
{
    if ctx.shutting_down.load(Ordering::SeqCst) {
        conn.send_line(&Reply::new("shutting_down").str("id", &id).finish());
        return;
    }
    if !ctx.registry.insert(&id, token) {
        conn.send_line(
            &Reply::new("error")
                .str("id", &id)
                .str("message", "session id already in use")
                .finish(),
        );
        return;
    }
    // A runner can pick the job up and reach its `result` line before
    // this thread writes `accepted` — and `accepted` now carries the
    // program fingerprint clients feed back as `program_ref`, so the
    // ordering is part of the protocol. Gate the job on the accepted
    // line being out first.
    let gate = Arc::new((Mutex::new(false), Condvar::new()));
    let job = {
        let gate = Arc::clone(&gate);
        move |runner: &mut RunnerCtx| {
            let (lock, cvar) = &*gate;
            let mut admitted = lock.lock().expect("admission gate poisoned");
            while !*admitted {
                admitted = cvar.wait(admitted).expect("admission gate poisoned");
            }
            drop(admitted);
            job(runner);
        }
    };
    match ctx.scheduler.submit(&tenant, Box::new(job)) {
        Ok(()) => {
            // `program` is the canonical fingerprint: clients may
            // resubmit the same rule set by `program_ref` from now on.
            conn.send_line(
                &Reply::new("accepted")
                    .str("id", &id)
                    .str("program", program_fp)
                    .finish(),
            );
            let (lock, cvar) = &*gate;
            *lock.lock().expect("admission gate poisoned") = true;
            cvar.notify_all();
        }
        Err(Rejected::Overloaded { retry_after_ms }) => {
            ctx.registry.remove(&id);
            conn.send_line(
                &Reply::new("overloaded")
                    .str("id", &id)
                    .num("retry_after_ms", retry_after_ms)
                    .finish(),
            );
        }
        Err(Rejected::ShuttingDown) => {
            ctx.registry.remove(&id);
            conn.send_line(&Reply::new("shutting_down").str("id", &id).finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing_round_trips() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
            Endpoint::Tcp("127.0.0.1:0".into())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7878").unwrap(),
            Endpoint::Tcp("127.0.0.1:7878".into())
        );
        assert!(Endpoint::parse("nonsense").is_err());
    }

    #[test]
    fn conn_writer_degrades_once_and_counts_drops() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let conn = ConnWriter::new(Box::new(Broken));
        assert!(!conn.send_line("{\"type\":\"pong\"}"));
        assert!(!conn.send_event("s1", "{\"event\":\"x\"}"));
        assert_eq!(conn.dropped(), 2);
    }
}
