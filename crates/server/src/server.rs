//! The resident server: socket accept loop, per-connection protocol
//! handling, session registry and graceful drain.
//!
//! One process, one [`Scheduler`]; any number of client connections,
//! each carrying any number of interleaved sessions. Replies for all
//! sessions of a connection are multiplexed onto its single writer
//! (every line carries the session `id`), so clients demultiplex by
//! `id` rather than by stream.
//!
//! Shutdown is an in-band `{"op":"shutdown"}` request (any connection
//! may send it — the server fleet's supervisor owns the socket, so
//! in-band is the honest interface in a `std`-only process with no
//! signal-handler access): admission stops immediately with typed
//! `shutting_down` replies, queued and running sessions finish and
//! deliver their results, runner threads exit, the accept loop wakes
//! and returns. Every session's [`CancelToken`] is registered in a
//! [`CancelGroup`], so an *abortive* variant (`{"op":"shutdown",
//! "abort":true}` in a future PR) only needs one `cancel_all` call.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use chase_core::cancel::{CancelGroup, CancelToken};

use crate::protocol::{event_reply, parse_request, Reply, Request};
use crate::scheduler::{Rejected, RunnerCtx, Scheduler, SchedulerConfig};
use crate::session::{run_chase_session, run_decide_session};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP address, e.g. `127.0.0.1:7878` (port 0 picks a free one).
    Tcp(String),
    /// A unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `unix:PATH`, `tcp:ADDR`, a bare path (contains `/`) or a
    /// bare TCP address.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if s.contains('/') {
            return Ok(Endpoint::Unix(PathBuf::from(s)));
        }
        if s.contains(':') {
            return Ok(Endpoint::Tcp(s.to_string()));
        }
        Err(format!(
            "cannot interpret endpoint '{s}': use unix:PATH or tcp:HOST:PORT"
        ))
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Scheduler knobs (runners, queue caps, retry hint).
    pub scheduler: SchedulerConfig,
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn split(self) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
        match self {
            Stream::Tcp(s) => Ok((Box::new(s.try_clone()?), Box::new(s))),
            Stream::Unix(s) => Ok((Box::new(s.try_clone()?), Box::new(s))),
        }
    }
}

/// One connection's shared, mutex-guarded line writer. All sessions of
/// the connection funnel through it; a write failure flips it into
/// degraded mode (silently dropping further lines — the client is
/// gone) after warning once on stderr.
pub struct ConnWriter {
    inner: Mutex<WriterInner>,
}

struct WriterInner {
    stream: Box<dyn Write + Send>,
    degraded: bool,
    warned: bool,
    dropped: u64,
}

impl ConnWriter {
    fn new(stream: Box<dyn Write + Send>) -> Self {
        ConnWriter {
            inner: Mutex::new(WriterInner {
                stream,
                degraded: false,
                warned: false,
                dropped: 0,
            }),
        }
    }

    /// Writes one line (newline appended). Returns `false` once the
    /// connection has degraded; the caller decides what dropping a
    /// line means (sessions count dropped events, results are
    /// best-effort).
    pub fn send_line(&self, line: &str) -> bool {
        let mut inner = self.inner.lock().expect("connection writer poisoned");
        if inner.degraded {
            inner.dropped += 1;
            return false;
        }
        let wrote = inner
            .stream
            .write_all(line.as_bytes())
            .and_then(|()| inner.stream.write_all(b"\n"))
            .and_then(|()| inner.stream.flush());
        if let Err(e) = wrote {
            inner.degraded = true;
            inner.dropped += 1;
            if !inner.warned {
                inner.warned = true;
                eprintln!("chase-server: connection write failed ({e}); dropping further replies");
            }
            return false;
        }
        true
    }

    /// Sends one spliced telemetry event line for session `id`.
    pub fn send_event(&self, id: &str, event_json: &str) -> bool {
        self.send_line(&event_reply(id, event_json))
    }

    /// Lines dropped since the connection degraded.
    pub fn dropped(&self) -> u64 {
        self.inner
            .lock()
            .expect("connection writer poisoned")
            .dropped
    }
}

/// Live-session registry: session id → cancel token, plus the group
/// that lets shutdown reach everything at once.
#[derive(Default)]
struct Registry {
    live: Mutex<HashMap<String, CancelToken>>,
    group: CancelGroup,
}

impl Registry {
    /// Registers a session's token; `false` if the id is already live
    /// (duplicate ids are a protocol error — sessions are keyed by id).
    fn insert(&self, id: &str, token: CancelToken) -> bool {
        let mut live = self.live.lock().expect("registry poisoned");
        if live.contains_key(id) {
            return false;
        }
        self.group.adopt(token.clone());
        live.insert(id.to_string(), token);
        true
    }

    fn cancel(&self, id: &str) -> bool {
        match self.live.lock().expect("registry poisoned").get(id) {
            Some(token) => {
                token.cancel();
                true
            }
            None => false,
        }
    }

    fn remove(&self, id: &str) {
        self.live.lock().expect("registry poisoned").remove(id);
        self.group.prune();
    }
}

/// The resident chase server. [`Server::bind`] then [`Server::run`];
/// `run` returns after a graceful drain.
pub struct Server {
    listener: Listener,
    endpoint: Endpoint,
    scheduler: Arc<Scheduler>,
    registry: Arc<Registry>,
    shutting_down: Arc<AtomicBool>,
}

impl Server {
    /// Binds the endpoint (an existing unix socket path is unlinked
    /// first) and starts the scheduler's runner threads.
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> std::io::Result<Server> {
        let (listener, endpoint) = match endpoint {
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                // Re-render with the actual port (`:0` binds pick one).
                let actual = Endpoint::Tcp(listener.local_addr()?.to_string());
                (Listener::Tcp(listener), actual)
            }
            Endpoint::Unix(path) => {
                let _ = std::fs::remove_file(path);
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Endpoint::Unix(path.clone()),
                )
            }
        };
        Ok(Server {
            listener,
            endpoint,
            scheduler: Arc::new(Scheduler::new(config.scheduler)),
            registry: Arc::new(Registry::default()),
            shutting_down: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound endpoint (with the real port for `:0` TCP binds).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Serves until a `shutdown` request completes its drain. Each
    /// connection gets its own handler thread; sessions run on the
    /// scheduler regardless of which connection submitted them.
    pub fn run(self) -> std::io::Result<()> {
        let mut handlers = Vec::new();
        loop {
            let stream = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("chase-server: accept failed: {e}");
                    continue;
                }
            };
            let ctx = HandlerCtx {
                scheduler: Arc::clone(&self.scheduler),
                registry: Arc::clone(&self.registry),
                shutting_down: Arc::clone(&self.shutting_down),
                endpoint: self.endpoint.clone(),
            };
            handlers.push(std::thread::spawn(move || handle_connection(stream, &ctx)));
        }
        // Drain: finish queued + running sessions, join runners, then
        // the handler threads (their clients have their results).
        self.scheduler.shutdown();
        if let Endpoint::Unix(path) = &self.endpoint {
            let _ = std::fs::remove_file(path);
        }
        for handler in handlers {
            let _ = handler.join();
        }
        Ok(())
    }
}

struct HandlerCtx {
    scheduler: Arc<Scheduler>,
    registry: Arc<Registry>,
    shutting_down: Arc<AtomicBool>,
    endpoint: Endpoint,
}

impl HandlerCtx {
    /// Wakes the blocking accept loop after shutdown was flagged.
    fn poke_acceptor(&self) {
        let _ = match &self.endpoint {
            Endpoint::Tcp(addr) => TcpStream::connect(addr.as_str()).map(drop),
            Endpoint::Unix(path) => UnixStream::connect(path).map(drop),
        };
    }
}

fn handle_connection(stream: Stream, ctx: &HandlerCtx) {
    let (read, write) = match stream.split() {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("chase-server: cannot split connection: {e}");
            return;
        }
    };
    let conn = Arc::new(ConnWriter::new(write));
    for line in BufReader::new(read).lines() {
        let line = match line {
            Ok(line) => line,
            Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(msg) => {
                conn.send_line(&Reply::new("error").str("message", &msg).finish());
            }
            Ok(Request::Ping) => {
                conn.send_line(&Reply::new("pong").finish());
            }
            Ok(Request::Cancel { id }) => {
                let hit = ctx.registry.cancel(&id);
                conn.send_line(
                    &Reply::new("cancel_ack")
                        .str("id", &id)
                        .str("known", if hit { "true" } else { "false" })
                        .finish(),
                );
            }
            Ok(Request::Shutdown) => {
                conn.send_line(
                    &Reply::new("shutdown_ack")
                        .num("queued", ctx.scheduler.queued() as u64)
                        .num("running", ctx.scheduler.running() as u64)
                        .finish(),
                );
                if !ctx.shutting_down.swap(true, Ordering::SeqCst) {
                    ctx.poke_acceptor();
                }
                // The reader keeps serving pings/cancels for this
                // connection until the client hangs up; admission is
                // already closed.
            }
            Ok(Request::Chase(req)) => {
                let (id, tenant, token) = (req.id.clone(), req.tenant.clone(), req.cancel.clone());
                submit_session(ctx, &conn, id, tenant, token, {
                    let conn = Arc::clone(&conn);
                    let registry = Arc::clone(&ctx.registry);
                    move |runner: &mut RunnerCtx| {
                        run_chase_session(&req, &conn, runner);
                        registry.remove(&req.id);
                    }
                });
            }
            Ok(Request::Decide(req)) => {
                let (id, tenant, token) = (req.id.clone(), req.tenant.clone(), req.cancel.clone());
                submit_session(ctx, &conn, id, tenant, token, {
                    let conn = Arc::clone(&conn);
                    let registry = Arc::clone(&ctx.registry);
                    move |_runner: &mut RunnerCtx| {
                        run_decide_session(&req, &conn);
                        registry.remove(&req.id);
                    }
                });
            }
        }
    }
}

/// Admission control for one session: duplicate-id check, shutdown
/// gate, scheduler submit with typed shed replies. `token` is a clone
/// of the token the session will actually poll — registering anything
/// else would make `cancel` requests no-ops.
fn submit_session<F>(
    ctx: &HandlerCtx,
    conn: &Arc<ConnWriter>,
    id: String,
    tenant: String,
    token: CancelToken,
    job: F,
) where
    F: FnOnce(&mut RunnerCtx) + Send + 'static,
{
    if ctx.shutting_down.load(Ordering::SeqCst) {
        conn.send_line(&Reply::new("shutting_down").str("id", &id).finish());
        return;
    }
    if !ctx.registry.insert(&id, token) {
        conn.send_line(
            &Reply::new("error")
                .str("id", &id)
                .str("message", "session id already in use")
                .finish(),
        );
        return;
    }
    match ctx.scheduler.submit(&tenant, Box::new(job)) {
        Ok(()) => {
            conn.send_line(&Reply::new("accepted").str("id", &id).finish());
        }
        Err(Rejected::Overloaded { retry_after_ms }) => {
            ctx.registry.remove(&id);
            conn.send_line(
                &Reply::new("overloaded")
                    .str("id", &id)
                    .num("retry_after_ms", retry_after_ms)
                    .finish(),
            );
        }
        Err(Rejected::ShuttingDown) => {
            ctx.registry.remove(&id);
            conn.send_line(&Reply::new("shutting_down").str("id", &id).finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing_round_trips() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("/tmp/x.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:0").unwrap(),
            Endpoint::Tcp("127.0.0.1:0".into())
        );
        assert_eq!(
            Endpoint::parse("127.0.0.1:7878").unwrap(),
            Endpoint::Tcp("127.0.0.1:7878".into())
        );
        assert!(Endpoint::parse("nonsense").is_err());
    }

    #[test]
    fn conn_writer_degrades_once_and_counts_drops() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let conn = ConnWriter::new(Box::new(Broken));
        assert!(!conn.send_line("{\"type\":\"pong\"}"));
        assert!(!conn.send_event("s1", "{\"event\":\"x\"}"));
        assert_eq!(conn.dropped(), 2);
    }
}
