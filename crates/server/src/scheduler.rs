//! Bounded fair-share session scheduler.
//!
//! Sessions are `Send` closures queued per tenant and executed by a
//! fixed set of runner threads over the persistent chase pool
//! machinery. Three properties matter more than raw throughput:
//!
//! * **Fairness** — runners pick the next job round-robin across
//!   tenants (ordered `BTreeMap` + rotating cursor), so one tenant
//!   queueing a hundred sessions cannot starve another's first.
//! * **Admission control** — a per-tenant queue cap and a global cap
//!   bound memory; a rejected submit returns a typed [`Rejected`]
//!   carrying a retry hint instead of blocking or silently dropping.
//! * **Containment** — every job runs behind `catch_unwind`; a
//!   panicking session costs its runner nothing but a fresh
//!   [`RunnerCtx`] (the warm pools are discarded in case the panic
//!   left one mid-batch).
//!
//! The scheduler drains on [`Scheduler::shutdown`]: submits are
//! refused, queued and running sessions finish, runner threads exit
//! and are joined. Drain is also what the server's `shutdown` request
//! triggers, so "graceful" is a scheduler property, not server-loop
//! heroics.

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use chase_engine::pool::DiscoveryPool;

/// One queued session: a closure over its request, connection writer
/// and registry handles.
pub type Job = Box<dyn FnOnce(&mut RunnerCtx) + Send>;

/// Scheduler tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerConfig {
    /// Runner threads = maximum concurrently running sessions.
    pub runners: usize,
    /// Maximum queued (not yet running) sessions per tenant.
    pub tenant_queue_cap: usize,
    /// Maximum queued sessions across all tenants.
    pub global_queue_cap: usize,
    /// Base retry hint handed to shed clients, scaled by queue depth.
    pub retry_after_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            runners: 2,
            tenant_queue_cap: 8,
            global_queue_cap: 64,
            retry_after_ms: 25,
        }
    }
}

/// Why a submit was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// Queues are full; retry after the hinted backoff.
    Overloaded {
        /// Suggested client-side wait before retrying.
        retry_after_ms: u64,
    },
    /// The scheduler is draining; there is no point retrying.
    ShuttingDown,
}

/// Per-runner scratch state: a cache of warm [`DiscoveryPool`]s keyed
/// by requested worker count, so back-to-back sessions with the same
/// thread config reuse spawned workers. Keying by the *requested*
/// count is what keeps shared-pool runs bit-identical to fresh-pool
/// runs (see `chase_engine::task`).
#[derive(Default)]
pub struct RunnerCtx {
    pools: BTreeMap<usize, DiscoveryPool>,
}

impl RunnerCtx {
    /// The warm pool for `threads` (`None` = sequential), creating it
    /// on first use.
    pub fn pool_for(&mut self, threads: Option<usize>) -> &mut DiscoveryPool {
        let key = threads.unwrap_or(0);
        self.pools
            .entry(key)
            .or_insert_with(|| DiscoveryPool::new(threads))
    }
}

struct State {
    queues: BTreeMap<String, VecDeque<Job>>,
    /// Round-robin position: index into the sorted tenant keys.
    cursor: usize,
    queued: usize,
    running: usize,
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or drain begins (runners wait).
    available: Condvar,
    /// Signalled when the scheduler may have gone idle (drain waits).
    idle: Condvar,
    cfg: SchedulerConfig,
}

impl Shared {
    /// Pops the next job round-robin across tenants. Caller holds the
    /// lock via `state`.
    fn take_next(state: &mut State) -> Option<Job> {
        if state.queued == 0 {
            return None;
        }
        let tenants: Vec<String> = state.queues.keys().cloned().collect();
        let n = tenants.len();
        for offset in 0..n {
            let tenant = &tenants[(state.cursor + offset) % n];
            if let Some(queue) = state.queues.get_mut(tenant) {
                if let Some(job) = queue.pop_front() {
                    if queue.is_empty() {
                        state.queues.remove(tenant);
                    }
                    state.queued -= 1;
                    // Advance past the tenant we just served.
                    state.cursor = (state.cursor + offset + 1) % n.max(1);
                    return Some(job);
                }
            }
        }
        None
    }
}

/// The fair-share scheduler; see the module docs.
pub struct Scheduler {
    shared: Arc<Shared>,
    runners: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `cfg.runners` runner threads (at least one).
    pub fn new(cfg: SchedulerConfig) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queues: BTreeMap::new(),
                cursor: 0,
                queued: 0,
                running: 0,
                draining: false,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            cfg,
        });
        let mut runners = Vec::new();
        for i in 0..cfg.runners.max(1) {
            let shared = Arc::clone(&shared);
            runners.push(
                std::thread::Builder::new()
                    .name(format!("chase-runner-{i}"))
                    .spawn(move || runner_loop(&shared))
                    .expect("spawn runner thread"),
            );
        }
        Scheduler {
            shared,
            runners: Mutex::new(runners),
        }
    }

    /// Queues `job` under `tenant`, or sheds it with a typed reason.
    pub fn submit(&self, tenant: &str, job: Job) -> Result<(), Rejected> {
        let mut state = self.shared.state.lock().expect("scheduler poisoned");
        if state.draining {
            return Err(Rejected::ShuttingDown);
        }
        let cfg = &self.shared.cfg;
        let tenant_depth = state.queues.get(tenant).map_or(0, VecDeque::len);
        if state.queued >= cfg.global_queue_cap || tenant_depth >= cfg.tenant_queue_cap {
            // Deeper queues ⇒ longer hint, so a retry storm spreads out
            // instead of stampeding the moment one slot frees up.
            let depth = tenant_depth.max(state.queued / cfg.tenant_queue_cap.max(1));
            return Err(Rejected::Overloaded {
                retry_after_ms: cfg.retry_after_ms * (depth as u64 + 1),
            });
        }
        state
            .queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(job);
        state.queued += 1;
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Queued (not yet running) sessions.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("scheduler poisoned").queued
    }

    /// Currently running sessions.
    pub fn running(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("scheduler poisoned")
            .running
    }

    /// Drains and stops: refuses new submits, waits for queued and
    /// running sessions to finish, then joins the runner threads.
    /// Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.shared.state.lock().expect("scheduler poisoned");
            state.draining = true;
            self.shared.available.notify_all();
            while state.queued > 0 || state.running > 0 {
                state = self
                    .shared
                    .idle
                    .wait(state)
                    .expect("scheduler poisoned while draining");
            }
        }
        let handles = std::mem::take(&mut *self.runners.lock().expect("scheduler poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn runner_loop(shared: &Shared) {
    let mut ctx = RunnerCtx::default();
    loop {
        let job = {
            let mut state = shared.state.lock().expect("scheduler poisoned");
            loop {
                if let Some(job) = Shared::take_next(&mut state) {
                    state.running += 1;
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .expect("scheduler poisoned while idle");
            }
        };
        // Session code is panic-contained one level down
        // (run_chase_task); this boundary catches everything else —
        // decide sessions, reply plumbing — so a runner never dies.
        if catch_unwind(AssertUnwindSafe(|| job(&mut ctx))).is_err() {
            // The panic may have left a warm pool mid-batch; start
            // clean rather than hand the next session a wedged pool.
            ctx = RunnerCtx::default();
        }
        let mut state = shared.state.lock().expect("scheduler poisoned");
        state.running -= 1;
        if state.queued == 0 && state.running == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    fn counter_job(counter: &Arc<AtomicUsize>) -> Job {
        let counter = Arc::clone(counter);
        Box::new(move |_ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
        })
    }

    #[test]
    fn runs_submitted_jobs_and_drains() {
        let sched = Scheduler::new(SchedulerConfig {
            runners: 2,
            tenant_queue_cap: 16,
            ..SchedulerConfig::default()
        });
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            sched.submit("t", counter_job(&done)).unwrap();
        }
        sched.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 10);
        assert_eq!(sched.queued(), 0);
        assert_eq!(sched.running(), 0);
    }

    #[test]
    fn submits_after_shutdown_are_refused() {
        let sched = Scheduler::new(SchedulerConfig::default());
        sched.shutdown();
        let done = Arc::new(AtomicUsize::new(0));
        assert_eq!(
            sched.submit("t", counter_job(&done)),
            Err(Rejected::ShuttingDown)
        );
    }

    #[test]
    fn tenant_queue_cap_sheds_with_retry_hint() {
        // One runner blocked on a gate, so submits pile up in queues.
        let sched = Scheduler::new(SchedulerConfig {
            runners: 1,
            tenant_queue_cap: 2,
            global_queue_cap: 64,
            retry_after_ms: 10,
        });
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(
                "a",
                Box::new(move |_| {
                    started_tx.send(()).unwrap();
                    gate_rx.recv().unwrap();
                }),
            )
            .unwrap();
        started_rx.recv().unwrap(); // runner is now busy
        let done = Arc::new(AtomicUsize::new(0));
        sched.submit("a", counter_job(&done)).unwrap();
        sched.submit("a", counter_job(&done)).unwrap();
        match sched.submit("a", counter_job(&done)) {
            Err(Rejected::Overloaded { retry_after_ms }) => assert!(retry_after_ms >= 10),
            other => panic!("expected overload, got {other:?}"),
        }
        // Another tenant still has room.
        sched.submit("b", counter_job(&done)).unwrap();
        gate_tx.send(()).unwrap();
        sched.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn round_robin_interleaves_tenants() {
        // Single runner; tenant "a" floods first, then "b" submits two.
        // Fair-share must not run all of "a" before "b" starts.
        let sched = Scheduler::new(SchedulerConfig {
            runners: 1,
            tenant_queue_cap: 16,
            global_queue_cap: 64,
            retry_after_ms: 10,
        });
        let order = Arc::new(Mutex::new(Vec::new()));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        sched
            .submit(
                "hold",
                Box::new(move |_| {
                    started_tx.send(()).unwrap();
                    gate_rx.recv().unwrap();
                }),
            )
            .unwrap();
        started_rx.recv().unwrap();
        let tag_job = |tag: &'static str| -> Job {
            let order = Arc::clone(&order);
            Box::new(move |_| order.lock().unwrap().push(tag))
        };
        for _ in 0..4 {
            sched.submit("a", tag_job("a")).unwrap();
        }
        for _ in 0..2 {
            sched.submit("b", tag_job("b")).unwrap();
        }
        gate_tx.send(()).unwrap();
        sched.shutdown();
        let order = order.lock().unwrap().clone();
        assert_eq!(order.len(), 6);
        let first_b = order.iter().position(|&t| t == "b").unwrap();
        assert!(
            first_b <= 2,
            "tenant b's first job should run early despite a's flood: {order:?}"
        );
    }

    #[test]
    fn a_panicking_job_does_not_kill_its_runner() {
        let sched = Scheduler::new(SchedulerConfig {
            runners: 1,
            ..SchedulerConfig::default()
        });
        chase_engine::faults::silence_injected_panics();
        sched
            .submit(
                "t",
                Box::new(|_| chase_engine::faults::inject_worker_panic()),
            )
            .unwrap();
        let done = Arc::new(AtomicUsize::new(0));
        sched.submit("t", counter_job(&done)).unwrap();
        sched.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "runner survived the panic");
    }

    #[test]
    fn runner_ctx_caches_pools_by_thread_count() {
        let mut ctx = RunnerCtx::default();
        assert_eq!(ctx.pool_for(Some(2)).target_workers(), 2);
        // `None` mirrors `DiscoveryPool::new(None)` (host-dependent
        // target); it must be cached separately from explicit counts.
        ctx.pool_for(None);
        ctx.pool_for(Some(2));
        ctx.pool_for(None);
        assert_eq!(ctx.pools.len(), 2);
    }
}
