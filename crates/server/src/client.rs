//! Client-side driver: connect, submit one session, stream its reply
//! lines, and retry load-shed submissions with exponential backoff +
//! jitter.
//!
//! The retry loop only re-sends on `overloaded` (a typed, explicitly
//! retryable shed) and honours the server's `retry_after_ms` as a
//! floor under the exponential curve. Jitter is deterministic per
//! [`ClientConfig::jitter_seed`] so tests replay exactly; real callers
//! seed from anything handy. `shutting_down` and `error` replies are
//! terminal — retrying a draining server is how thundering herds are
//! made.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use chase_telemetry::json::{parse_line, Scalar};

use crate::server::Endpoint;

/// Retry/backoff knobs.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Resubmission attempts after the first (0 = never retry).
    pub retries: u32,
    /// First backoff step; doubles per attempt.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Seed for deterministic jitter.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            retries: 5,
            base_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0x5EED,
        }
    }
}

/// Why a session submission ultimately failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connect/read/write failure.
    Io(String),
    /// The server replied `error`, or closed mid-session.
    Protocol(String),
    /// Still `overloaded` after every retry; the payload is the number
    /// of attempts made.
    Overloaded(u32),
    /// The server is draining; the session was not admitted.
    ShuttingDown,
    /// A `program_ref` submission missed the server's program cache
    /// and no full-source fallback was available; the payload is the
    /// unknown fingerprint.
    UnknownProgram(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(msg) => write!(f, "i/o error: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Overloaded(attempts) => {
                write!(f, "server overloaded after {attempts} attempts")
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
            ClientError::UnknownProgram(fp) => {
                write!(f, "program_ref {fp} is not cached (resubmit full source)")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// A finished session as seen from the client.
#[derive(Debug)]
pub struct SessionResult {
    /// The terminal `result` line's fields.
    pub result: BTreeMap<String, Scalar>,
    /// `event` lines relayed before the result.
    pub events: u64,
    /// Connection attempts used (1 = no retry needed).
    pub attempts: u32,
}

/// Minimal xorshift for jitter; deliberately local — the engine's PRNG
/// is crate-private and pulling `rand` in for backoff noise would be
/// absurd.
struct Jitter(u64);

impl Jitter {
    fn next_ms(&mut self, cap_ms: u64) -> u64 {
        let mut x = self.0.max(1);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        if cap_ms == 0 {
            0
        } else {
            x % cap_ms
        }
    }
}

fn connect(endpoint: &Endpoint) -> std::io::Result<(Box<dyn Read + Send>, Box<dyn Write + Send>)> {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = TcpStream::connect(addr.as_str())?;
            Ok((Box::new(stream.try_clone()?), Box::new(stream)))
        }
        Endpoint::Unix(path) => {
            let stream = UnixStream::connect(path)?;
            Ok((Box::new(stream.try_clone()?), Box::new(stream)))
        }
    }
}

/// Sends one already-encoded request line and returns the parsed reply
/// lines until (and excluding) the first one whose `type` is terminal
/// for this request. Fire-and-forget ops (`ping`, `shutdown`,
/// `cancel`) get exactly one line back; use this for those too.
pub fn request_once(
    endpoint: &Endpoint,
    request_line: &str,
) -> Result<BTreeMap<String, Scalar>, ClientError> {
    let (read, mut write) = connect(endpoint).map_err(|e| ClientError::Io(e.to_string()))?;
    write
        .write_all(request_line.as_bytes())
        .and_then(|()| write.write_all(b"\n"))
        .and_then(|()| write.flush())
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut reader = BufReader::new(read);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => Err(ClientError::Protocol("server closed the connection".into())),
        Ok(_) => parse_line(line.trim_end()).map_err(ClientError::Protocol),
        Err(e) => Err(ClientError::Io(e.to_string())),
    }
}

/// Submits one session request and drives it to its `result` line,
/// retrying `overloaded` sheds per `config`. Every reply line of the
/// session (accepted, events, result) is handed to `on_line` as it
/// arrives, so a CLI can tee the stream.
pub fn run_session<F>(
    endpoint: &Endpoint,
    request_line: &str,
    config: &ClientConfig,
    on_line: F,
) -> Result<SessionResult, ClientError>
where
    F: FnMut(&BTreeMap<String, Scalar>),
{
    run_session_with_fallback(endpoint, request_line, None, config, on_line)
}

/// [`run_session`] with a full-source fallback line for `program_ref`
/// submissions: when the server replies `unknown_program` (cache
/// miss), the fallback is submitted immediately on a fresh connection
/// — one extra round trip, no backoff, and the server caches the
/// program for next time. Without a fallback the miss surfaces as
/// [`ClientError::UnknownProgram`].
pub fn run_session_with_fallback<F>(
    endpoint: &Endpoint,
    request_line: &str,
    fallback_line: Option<&str>,
    config: &ClientConfig,
    mut on_line: F,
) -> Result<SessionResult, ClientError>
where
    F: FnMut(&BTreeMap<String, Scalar>),
{
    let mut jitter = Jitter(config.jitter_seed);
    let mut attempts = 0u32;
    let mut line = request_line;
    loop {
        attempts += 1;
        match drive_once(endpoint, line, &mut on_line) {
            Ok(Driven::Finished { result, events }) => {
                return Ok(SessionResult {
                    result,
                    events,
                    attempts,
                })
            }
            Ok(Driven::Overloaded { retry_after_ms }) => {
                if attempts > config.retries {
                    return Err(ClientError::Overloaded(attempts));
                }
                // Exponential curve with the server's hint as a floor,
                // plus up to one base-step of jitter, capped.
                let exp = config
                    .base_backoff
                    .saturating_mul(1u32 << (attempts - 1).min(16));
                let base = exp.max(Duration::from_millis(retry_after_ms));
                let jitter_ms = jitter.next_ms(config.base_backoff.as_millis().max(1) as u64);
                let wait = (base + Duration::from_millis(jitter_ms)).min(config.max_backoff);
                std::thread::sleep(wait);
            }
            Ok(Driven::ShuttingDown) => return Err(ClientError::ShuttingDown),
            Ok(Driven::UnknownProgram { program_ref }) => match fallback_line {
                // Resubmit the full-source line at once — the miss is
                // not a load condition, so no backoff applies. If the
                // fallback itself misses (it can't: it carries source),
                // the second arm stops any theoretical loop.
                Some(fallback) if line != fallback => line = fallback,
                _ => return Err(ClientError::UnknownProgram(program_ref)),
            },
            Err(e) => return Err(e),
        }
    }
}

enum Driven {
    Finished {
        result: BTreeMap<String, Scalar>,
        events: u64,
    },
    Overloaded {
        retry_after_ms: u64,
    },
    ShuttingDown,
    UnknownProgram {
        program_ref: String,
    },
}

fn drive_once<F>(
    endpoint: &Endpoint,
    request_line: &str,
    on_line: &mut F,
) -> Result<Driven, ClientError>
where
    F: FnMut(&BTreeMap<String, Scalar>),
{
    let (read, mut write) = connect(endpoint).map_err(|e| ClientError::Io(e.to_string()))?;
    write
        .write_all(request_line.as_bytes())
        .and_then(|()| write.write_all(b"\n"))
        .and_then(|()| write.flush())
        .map_err(|e| ClientError::Io(e.to_string()))?;
    let mut events = 0u64;
    for line in BufReader::new(read).lines() {
        let line = line.map_err(|e| ClientError::Io(e.to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = parse_line(&line).map_err(ClientError::Protocol)?;
        let kind = parsed
            .get("type")
            .and_then(Scalar::as_str)
            .unwrap_or("")
            .to_string();
        on_line(&parsed);
        match kind.as_str() {
            "accepted" => {}
            "event" => events += 1,
            "result" => {
                return Ok(Driven::Finished {
                    result: parsed,
                    events,
                })
            }
            "overloaded" => {
                let retry_after_ms = parsed
                    .get("retry_after_ms")
                    .and_then(Scalar::as_num)
                    .unwrap_or(0);
                return Ok(Driven::Overloaded { retry_after_ms });
            }
            "shutting_down" => return Ok(Driven::ShuttingDown),
            "unknown_program" => {
                let program_ref = parsed
                    .get("program_ref")
                    .and_then(Scalar::as_str)
                    .unwrap_or("")
                    .to_string();
                return Ok(Driven::UnknownProgram { program_ref });
            }
            "error" => {
                let msg = parsed
                    .get("message")
                    .and_then(Scalar::as_str)
                    .unwrap_or("unspecified server error");
                return Err(ClientError::Protocol(msg.to_string()));
            }
            other => {
                return Err(ClientError::Protocol(format!(
                    "unexpected reply type \"{other}\""
                )))
            }
        }
    }
    Err(ClientError::Protocol(
        "server closed the connection before the result".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let mut a = Jitter(42);
        let mut b = Jitter(42);
        for _ in 0..32 {
            let x = a.next_ms(100);
            assert_eq!(x, b.next_ms(100));
            assert!(x < 100);
        }
        assert_eq!(Jitter(7).next_ms(0), 0);
    }
}
