//! # chase-server
//!
//! Chase-as-a-service: a warm resident process that accepts chase and
//! termination-decision sessions over a unix or TCP socket speaking
//! line-delimited flat JSON, runs them concurrently with per-session
//! resource governance, and degrades gracefully under load and faults.
//!
//! The paper's deciders ([`chase_termination`]) and engines
//! ([`chase_engine`]) are CPU-bound batch procedures; amortising
//! process start-up, TGD-set parsing machinery and — above all — the
//! warm [`DiscoveryPool`](chase_engine::pool::DiscoveryPool) worker
//! threads across many requests is what makes interactive use (a
//! notebook, a grader, a CI fleet) practical. The server provides:
//!
//! * **Session isolation** — every request runs as a
//!   [`chase_engine::task`] unit with its own
//!   [`ResourceGovernor`](chase_engine::governor::ResourceGovernor)
//!   (deadline, step/atom budget, cancel token) behind `catch_unwind`
//!   containment at two levels (task and runner); a panicking,
//!   non-terminating or cancelled session leaves every other session's
//!   result bit-identical to a standalone run (see
//!   `tests/server_isolation.rs`).
//! * **Admission control** — a bounded fair-share [`scheduler`] with
//!   per-tenant queues; load is shed with a typed `overloaded` reply
//!   carrying a retry hint, never by blocking or silent drops.
//! * **Graceful degradation** — telemetry is best-effort per
//!   connection (write failures degrade the stream and are counted,
//!   results still delivered); shutdown drains queued and running
//!   sessions before exit.
//!
//! * **Program caching** — programs are compiled once
//!   ([`chase_core::compile`]) at admission and shared as
//!   `Arc<CompiledProgram>`; the content-addressed [`cache`] layer
//!   answers repeated rule sets without re-parsing, memoizes
//!   termination verdicts, and lets clients submit by fingerprint
//!   (`program_ref`).
//!
//! Module map: [`protocol`] (wire grammar), [`scheduler`] (fair-share
//! execution), [`cache`] (compiled programs + decide memoization),
//! [`session`] (one request's lifecycle), [`server`] (sockets,
//! registry, drain), [`client`] (submission + retry with backoff and
//! jitter).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod session;

pub use cache::{Caches, DecideCache, ProgramCache, ProgramCacheConfig};
pub use client::{
    run_session, run_session_with_fallback, ClientConfig, ClientError, SessionResult,
};
pub use protocol::{parse_request, Reply, Request};
pub use scheduler::{Rejected, Scheduler, SchedulerConfig};
pub use server::{ConnWriter, Endpoint, Server, ServerConfig};
