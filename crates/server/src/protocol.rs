//! The chase-server wire protocol: line-delimited **flat JSON**
//! objects in both directions, the same grammar as the telemetry JSONL
//! stream ([`chase_telemetry::json`] is the shared decoder,
//! [`chase_telemetry::event::escape_json`] the shared string encoder).
//! No nesting, no floats, no nulls — every message is one line of
//! string/integer/boolean pairs, so a `chasectl stats` pipeline can
//! chew on a raw session transcript unchanged.
//!
//! ## Requests (client → server)
//!
//! | `op`       | fields |
//! |------------|--------|
//! | `chase`    | `id`, `program` and/or `program_ref`; optional `tenant`, `engine` (`restricted`\|`oblivious`\|`semi`), `strategy` (`fifo`\|`lifo`\|`random`\|`priority`), `seed`, `max_steps`, `max_atoms`, `deadline_ms`, `threads`, `telemetry` (bool), fault arms below |
//! | `decide`   | `id`, `program` and/or `program_ref`; optional `tenant`, `deadline_ms`, `telemetry` |
//! | `cancel`   | `id` — trips the session's [`CancelToken`] |
//! | `ping`     | liveness probe |
//! | `shutdown` | optional `mode` (`graceful` default \| `abort`): stop admitting; graceful finishes queued + running sessions, abort additionally trips every live session's cancel token so they wind down with `outcome:"cancelled"` |
//!
//! `program_ref` is the canonical 32-hex-digit content fingerprint of
//! a previously compiled program
//! ([`chase_core::compile::ProgramFingerprint`]): the server answers
//! from its program cache, or replies `unknown_program` so the client
//! falls back to resubmitting full source. When both `program` and
//! `program_ref` are present the reference is tried first and the
//! source is the in-line fallback (one round trip instead of two).
//!
//! Fault arms (tests and the isolation suite only): `fault_cancel_at`,
//! `fault_deadline_at`, `fault_task_panic_at` (step-indexed) and
//! `fault_socket_fail_after` (telemetry writes through the session's
//! connection start failing after N successes).
//!
//! ## Responses (server → client)
//!
//! | `type`         | meaning |
//! |----------------|---------|
//! | `accepted`     | session admitted; carries `program` (the canonical fingerprint, usable as `program_ref` later); events/result follow (any interleaving with other sessions on the same connection) |
//! | `event`        | one telemetry event of session `id`, spliced verbatim |
//! | `result`       | terminal: `status` is `ok`, `parse_error` or `panicked`; `ok` chase results carry `outcome`, `steps`, `atoms`, `fingerprint` (hex), `events_dropped`; `ok` decide results carry `verdict` (+ `reason` when unknown) and `cached` (memoized verdict, no decider ran). `parse_error` is produced at admission — malformed programs never occupy a scheduler slot |
//! | `unknown_program` | the `program_ref` fingerprint is not cached and no in-line `program` fallback was supplied; resubmit with full source |
//! | `overloaded`   | load-shed: not admitted, retry after `retry_after_ms` |
//! | `shutting_down`| not admitted: the server is draining |
//! | `cancel_ack` / `pong` / `shutdown_ack` | control-plane acknowledgements (`shutdown_ack` echoes `mode`) |
//! | `error`        | malformed request (the connection stays up) |

use std::collections::BTreeMap;
use std::time::Duration;

use chase_core::cancel::CancelToken;
use chase_core::compile::ProgramFingerprint;
use chase_engine::faults::FaultPlan;
use chase_engine::governor::Budget;
use chase_engine::restricted::Strategy;
use chase_engine::task::TaskEngine;
use chase_telemetry::event::escape_json;
use chase_telemetry::json::{parse_line, Scalar};

/// Fallback seed for `strategy=random` without an explicit `seed`,
/// mirroring the CLI default.
pub const DEFAULT_RANDOM_SEED: u64 = 0x9E3779B97F4A7C15;

/// One parsed client request.
#[derive(Debug)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Drain + exit; `abort` additionally cancels every live session.
    Shutdown {
        /// `true` for `mode:"abort"`: trip the registry's
        /// [`CancelGroup`](chase_core::cancel::CancelGroup) so running
        /// sessions wind down with `outcome:"cancelled"` instead of
        /// finishing their work.
        abort: bool,
    },
    /// Cancel the named session.
    Cancel {
        /// The session to cancel.
        id: String,
    },
    /// Run a chase session.
    Chase(Box<SessionRequest>),
    /// Run a termination-decision session.
    Decide(Box<DecideRequest>),
}

/// A fully resolved chase session request.
#[derive(Debug)]
pub struct SessionRequest {
    /// Client-chosen session id, echoed on every reply line.
    pub id: String,
    /// Fair-share tenant; sessions of one tenant queue behind each
    /// other, not behind other tenants'.
    pub tenant: String,
    /// Program source (database + TGDs); `None` for a pure
    /// `program_ref` submission.
    pub program: Option<String>,
    /// Canonical fingerprint of a previously compiled program; the
    /// server resolves it against its program cache first.
    pub program_ref: Option<ProgramFingerprint>,
    /// Engine selection.
    pub engine: TaskEngine,
    /// Step/atom budget.
    pub budget: Budget,
    /// Per-session deadline, measured from session start.
    pub deadline: Option<Duration>,
    /// Worker threads (`None` = sequential).
    pub threads: Option<usize>,
    /// Whether to stream telemetry events back.
    pub telemetry: bool,
    /// Injected faults (isolation tests).
    pub faults: FaultPlan,
    /// The session's cancellation token; the server registers a clone
    /// so `cancel` requests and shutdown can reach the running task.
    pub cancel: CancelToken,
}

/// A termination-decision session request.
#[derive(Debug)]
pub struct DecideRequest {
    /// Client-chosen session id.
    pub id: String,
    /// Fair-share tenant.
    pub tenant: String,
    /// Program source (the database part may be empty); `None` for a
    /// pure `program_ref` submission.
    pub program: Option<String>,
    /// Canonical fingerprint of a previously compiled program.
    pub program_ref: Option<ProgramFingerprint>,
    /// Per-session deadline.
    pub deadline: Option<Duration>,
    /// Whether to stream telemetry events back.
    pub telemetry: bool,
    /// The session's cancellation token.
    pub cancel: CancelToken,
}

fn get_str(map: &BTreeMap<String, Scalar>, key: &str) -> Result<Option<String>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Scalar::Str(s)) => Ok(Some(s.clone())),
        Some(other) => Err(format!("field \"{key}\" must be a string, got {other:?}")),
    }
}

fn get_num(map: &BTreeMap<String, Scalar>, key: &str) -> Result<Option<u64>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Scalar::Num(n)) => Ok(Some(*n)),
        Some(other) => Err(format!("field \"{key}\" must be an integer, got {other:?}")),
    }
}

fn get_bool(map: &BTreeMap<String, Scalar>, key: &str) -> Result<Option<bool>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Scalar::Bool(b)) => Ok(Some(*b)),
        Some(other) => Err(format!("field \"{key}\" must be a boolean, got {other:?}")),
    }
}

fn require_id(map: &BTreeMap<String, Scalar>) -> Result<String, String> {
    let id = get_str(map, "id")?.ok_or("missing required field \"id\"")?;
    if id.is_empty() {
        return Err("field \"id\" must be non-empty".into());
    }
    Ok(id)
}

/// Extracts the `program` / `program_ref` pair, requiring at least
/// one and validating the fingerprint's 32-hex-digit shape.
fn parse_program_fields(
    map: &BTreeMap<String, Scalar>,
) -> Result<(Option<String>, Option<ProgramFingerprint>), String> {
    let program = get_str(map, "program")?;
    let program_ref = match get_str(map, "program_ref")? {
        None => None,
        Some(hex) => Some(ProgramFingerprint::parse_hex(&hex).ok_or_else(|| {
            format!("field \"program_ref\" must be 32 hex digits, got \"{hex}\"")
        })?),
    };
    if program.is_none() && program_ref.is_none() {
        return Err("missing required field \"program\" (or \"program_ref\")".into());
    }
    Ok((program, program_ref))
}

fn parse_faults(map: &BTreeMap<String, Scalar>) -> Result<FaultPlan, String> {
    Ok(FaultPlan {
        cancel_at_step: get_num(map, "fault_cancel_at")?.map(|n| n as usize),
        deadline_at_step: get_num(map, "fault_deadline_at")?.map(|n| n as usize),
        task_panic_at_step: get_num(map, "fault_task_panic_at")?.map(|n| n as usize),
        socket_fail_after: get_num(map, "fault_socket_fail_after")?,
        ..FaultPlan::default()
    })
}

/// Parses one request line. Errors are protocol-level diagnostics fit
/// for an `error` reply; they never tear the connection down.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let map = parse_line(line)?;
    let op = get_str(&map, "op")?.ok_or("missing required field \"op\"")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown {
            abort: match get_str(&map, "mode")?.as_deref() {
                None | Some("graceful") => false,
                Some("abort") => true,
                Some(other) => return Err(format!("unknown shutdown mode \"{other}\"")),
            },
        }),
        "cancel" => Ok(Request::Cancel {
            id: require_id(&map)?,
        }),
        "chase" => {
            let id = require_id(&map)?;
            let (program, program_ref) = parse_program_fields(&map)?;
            let seed = get_num(&map, "seed")?;
            let strategy = match get_str(&map, "strategy")?.as_deref() {
                None | Some("fifo") => Strategy::Fifo,
                Some("lifo") => Strategy::Lifo,
                Some("random") => Strategy::Random(seed.unwrap_or(DEFAULT_RANDOM_SEED)),
                Some("priority") => Strategy::PriorityTgd,
                Some(other) => return Err(format!("unknown strategy \"{other}\"")),
            };
            let engine = match get_str(&map, "engine")?.as_deref() {
                None | Some("restricted") => TaskEngine::Restricted { strategy },
                Some("oblivious") => TaskEngine::Oblivious { semi: false },
                Some("semi") => TaskEngine::Oblivious { semi: true },
                Some(other) => return Err(format!("unknown engine \"{other}\"")),
            };
            let budget = Budget {
                max_steps: get_num(&map, "max_steps")?
                    .map(|n| n as usize)
                    .unwrap_or(usize::MAX),
                max_atoms: get_num(&map, "max_atoms")?
                    .map(|n| n as usize)
                    .unwrap_or(usize::MAX),
            };
            Ok(Request::Chase(Box::new(SessionRequest {
                id,
                tenant: get_str(&map, "tenant")?.unwrap_or_else(|| "default".into()),
                program,
                program_ref,
                engine,
                budget,
                deadline: get_num(&map, "deadline_ms")?.map(Duration::from_millis),
                // `threads:0` means "sequential", i.e. absent — it must
                // not collide with `None` in the runner's pool cache.
                threads: get_num(&map, "threads")?
                    .map(|n| n as usize)
                    .filter(|&n| n > 0),
                telemetry: get_bool(&map, "telemetry")?.unwrap_or(false),
                faults: parse_faults(&map)?,
                cancel: CancelToken::new(),
            })))
        }
        "decide" => {
            let (program, program_ref) = parse_program_fields(&map)?;
            Ok(Request::Decide(Box::new(DecideRequest {
                id: require_id(&map)?,
                tenant: get_str(&map, "tenant")?.unwrap_or_else(|| "default".into()),
                program,
                program_ref,
                deadline: get_num(&map, "deadline_ms")?.map(Duration::from_millis),
                telemetry: get_bool(&map, "telemetry")?.unwrap_or(false),
                cancel: CancelToken::new(),
            })))
        }
        other => Err(format!("unknown op \"{other}\"")),
    }
}

/// Incremental builder for one flat-JSON reply line (no trailing
/// newline; the connection writer appends it).
#[derive(Debug)]
pub struct Reply {
    buf: String,
}

impl Reply {
    /// Starts a reply of the given `type`.
    pub fn new(kind: &str) -> Self {
        let mut buf = String::with_capacity(64);
        buf.push_str("{\"type\":\"");
        buf.push_str(kind);
        buf.push('"');
        Reply { buf }
    }

    /// Starts a request line of the given `op` — the client side of the
    /// protocol uses the same builder, keyed by `op` instead of `type`.
    pub fn request(op: &str) -> Self {
        let mut buf = String::with_capacity(64);
        buf.push_str("{\"op\":\"");
        buf.push_str(op);
        buf.push('"');
        Reply { buf }
    }

    /// Appends a string field (JSON-escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":\"");
        escape_json(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    /// Appends an integer field.
    pub fn num(mut self, key: &str, value: u64) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(&value.to_string());
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Closes the object and returns the line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Splices one telemetry event line into an `event` reply for session
/// `id`: `{"type":"event","id":"<id>",` + the event object's own
/// fields. The result is still one flat JSON object, so the combined
/// transcript stays `chasectl stats`-parseable.
pub fn event_reply(id: &str, event_json: &str) -> String {
    debug_assert!(event_json.starts_with('{') && event_json.ends_with('}'));
    let mut buf = String::with_capacity(event_json.len() + id.len() + 24);
    buf.push_str("{\"type\":\"event\",\"id\":\"");
    escape_json(&mut buf, id);
    buf.push('"');
    if event_json.len() > 2 {
        buf.push(',');
        buf.push_str(&event_json[1..event_json.len() - 1]);
    }
    buf.push('}');
    buf
}

/// The wire name of a chase outcome.
pub fn outcome_name(outcome: chase_engine::governor::Outcome) -> &'static str {
    use chase_engine::governor::Outcome;
    match outcome {
        Outcome::Terminated => "terminated",
        Outcome::BudgetExhausted => "budget_exhausted",
        Outcome::DeadlineExceeded => "deadline_exceeded",
        Outcome::Cancelled => "cancelled",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_chase_request() {
        let req = parse_request(r#"{"op":"chase","id":"s1","program":"R(a,b)."}"#).unwrap();
        match req {
            Request::Chase(req) => {
                assert_eq!(req.id, "s1");
                assert_eq!(req.tenant, "default");
                assert_eq!(
                    req.engine,
                    TaskEngine::Restricted {
                        strategy: Strategy::Fifo
                    }
                );
                assert_eq!(req.budget.max_steps, usize::MAX);
                assert!(req.deadline.is_none());
                assert!(!req.telemetry);
                assert!(req.faults.is_empty());
            }
            other => panic!("expected chase, got {other:?}"),
        }
    }

    #[test]
    fn parses_every_knob() {
        let line = concat!(
            r#"{"op":"chase","id":"s2","tenant":"t","program":"R(a,b).","engine":"semi","#,
            r#""max_steps":7,"max_atoms":100,"deadline_ms":250,"threads":2,"telemetry":true,"#,
            r#""fault_task_panic_at":3,"fault_socket_fail_after":5}"#
        );
        match parse_request(line).unwrap() {
            Request::Chase(req) => {
                assert_eq!(req.engine, TaskEngine::Oblivious { semi: true });
                assert_eq!(req.budget.max_steps, 7);
                assert_eq!(req.budget.max_atoms, 100);
                assert_eq!(req.deadline, Some(Duration::from_millis(250)));
                assert_eq!(req.threads, Some(2));
                assert!(req.telemetry);
                assert_eq!(req.faults.task_panic_at_step, Some(3));
                assert_eq!(req.faults.socket_fail_after, Some(5));
            }
            other => panic!("expected chase, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_requests_with_diagnostics() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":"x"}"#).unwrap_err().contains("op"));
        assert!(parse_request(r#"{"op":"chase","id":"x"}"#)
            .unwrap_err()
            .contains("program"));
        assert!(parse_request(r#"{"op":"chase","program":"R(a,b)."}"#)
            .unwrap_err()
            .contains("id"));
        assert!(parse_request(r#"{"op":"frobnicate"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(
            parse_request(r#"{"op":"chase","id":"x","program":"p","threads":"two"}"#)
                .unwrap_err()
                .contains("integer")
        );
    }

    #[test]
    fn parses_program_refs_and_shutdown_modes() {
        let fp = "0123456789abcdef0123456789abcdef";
        match parse_request(&format!(
            r#"{{"op":"chase","id":"s1","program_ref":"{fp}"}}"#
        ))
        .unwrap()
        {
            Request::Chase(req) => {
                assert!(req.program.is_none());
                assert_eq!(req.program_ref.unwrap().to_hex(), fp);
            }
            other => panic!("expected chase, got {other:?}"),
        }
        match parse_request(&format!(
            r#"{{"op":"decide","id":"d1","program":"R(x,y) -> S(x).","program_ref":"{fp}"}}"#
        ))
        .unwrap()
        {
            Request::Decide(req) => {
                assert!(req.program.is_some());
                assert!(req.program_ref.is_some());
            }
            other => panic!("expected decide, got {other:?}"),
        }
        assert!(
            parse_request(r#"{"op":"chase","id":"s1","program_ref":"zz"}"#)
                .unwrap_err()
                .contains("32 hex digits")
        );
        match parse_request(r#"{"op":"shutdown"}"#).unwrap() {
            Request::Shutdown { abort } => assert!(!abort),
            other => panic!("expected shutdown, got {other:?}"),
        }
        match parse_request(r#"{"op":"shutdown","mode":"abort"}"#).unwrap() {
            Request::Shutdown { abort } => assert!(abort),
            other => panic!("expected shutdown, got {other:?}"),
        }
        assert!(parse_request(r#"{"op":"shutdown","mode":"violent"}"#)
            .unwrap_err()
            .contains("shutdown mode"));
    }

    #[test]
    fn replies_are_valid_flat_json() {
        let line = Reply::new("result")
            .str("id", "s\"1")
            .str("status", "ok")
            .num("steps", 42)
            .finish();
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.get("type").and_then(Scalar::as_str), Some("result"));
        assert_eq!(parsed.get("id").and_then(Scalar::as_str), Some("s\"1"));
        assert_eq!(parsed.get("steps").and_then(Scalar::as_num), Some(42));
    }

    #[test]
    fn request_builder_round_trips_through_the_parser() {
        let line = Reply::request("chase")
            .str("id", "s1")
            .str("program", "R(a,b).\nR(x,y) -> S(x).")
            .num("max_steps", 100)
            .bool("telemetry", true)
            .finish();
        match parse_request(&line).unwrap() {
            Request::Chase(req) => {
                assert_eq!(req.id, "s1");
                assert_eq!(req.budget.max_steps, 100);
                assert!(req.telemetry);
                assert!(req.program.as_deref().unwrap().contains('\n'));
            }
            other => panic!("expected chase, got {other:?}"),
        }
    }

    #[test]
    fn event_splicing_keeps_lines_parseable() {
        let mut event = String::new();
        chase_telemetry::Event::PhaseExited {
            phase: "chase",
            nanos: 9,
        }
        .write_json(&mut event);
        let line = event_reply("sess-1", &event);
        let parsed = parse_line(&line).unwrap();
        assert_eq!(parsed.get("type").and_then(Scalar::as_str), Some("event"));
        assert_eq!(parsed.get("id").and_then(Scalar::as_str), Some("sess-1"));
        assert_eq!(
            parsed.get("event").and_then(Scalar::as_str),
            Some("phase_exited")
        );
        assert_eq!(parsed.get("nanos").and_then(Scalar::as_num), Some(9));
        // Degenerate but legal: an empty event object.
        let parsed = parse_line(&event_reply("x", "{}")).unwrap();
        assert_eq!(parsed.len(), 2);
    }
}
