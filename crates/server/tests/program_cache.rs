//! Acceptance suite for the content-addressed program cache and
//! decide memoization (DESIGN.md §18): repeated rule sets hit the
//! cache (asserted via streamed telemetry counters), cached sessions
//! stay bit-identical to cold ones, `program_ref` submissions resolve
//! or fall back, malformed programs are rejected at admission, and
//! abortive shutdown cancels in-flight sessions.

use std::collections::BTreeMap;
use std::time::Duration;

use chase_core::compile::compile;
use chase_engine::task::{run_chase_task, ChaseTaskSpec};
use chase_server::client::{
    request_once, run_session, run_session_with_fallback, ClientConfig, ClientError,
};
use chase_server::server::{Endpoint, Server, ServerConfig};
use chase_telemetry::json::Scalar;
use chase_telemetry::NullObserver;

const FINITE: &str = "R(a,b).\nR(x,y) -> S(x).\n";
const INFINITE: &str = "R(a,b).\nR(x,y) -> exists z. R(y,z).\n";

fn boot(tag: &str) -> (Endpoint, std::thread::JoinHandle<()>) {
    let dir = std::env::temp_dir().join(format!("chase-cache-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    let endpoint = Endpoint::Unix(dir.join("chase.sock"));
    let server = Server::bind(&endpoint, ServerConfig::default()).expect("bind server");
    let bound = server.endpoint().clone();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (bound, handle)
}

fn shutdown(endpoint: &Endpoint) {
    let ack = request_once(endpoint, r#"{"op":"shutdown"}"#).expect("shutdown ack");
    assert_eq!(
        ack.get("type").and_then(Scalar::as_str),
        Some("shutdown_ack")
    );
}

fn escaped(program: &str) -> String {
    let mut out = String::new();
    chase_telemetry::event::escape_json(&mut out, program);
    out
}

fn result_str<'a>(result: &'a BTreeMap<String, Scalar>, key: &str) -> &'a str {
    result
        .get(key)
        .and_then(Scalar::as_str)
        .unwrap_or_else(|| panic!("result missing string field {key}: {result:?}"))
}

/// Transcript of one session: the terminal result, the `accepted`
/// reply's `program` fingerprint, and every `server.*` counter_add
/// event summed by name.
struct Transcript {
    result: BTreeMap<String, Scalar>,
    accepted_program: Option<String>,
    counters: BTreeMap<String, u64>,
}

fn run_traced(endpoint: &Endpoint, request: &str) -> Transcript {
    let mut accepted_program = None;
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    let done = run_session(
        endpoint,
        request,
        &ClientConfig::default(),
        |line| match line.get("type").and_then(Scalar::as_str) {
            Some("accepted") => {
                accepted_program = line
                    .get("program")
                    .and_then(Scalar::as_str)
                    .map(String::from);
            }
            Some("event") if line.get("event").and_then(Scalar::as_str) == Some("counter_add") => {
                if let (Some(name), Some(delta)) = (
                    line.get("name").and_then(Scalar::as_str),
                    line.get("delta").and_then(Scalar::as_num),
                ) {
                    if name.starts_with("server.") {
                        *counters.entry(name.to_string()).or_insert(0) += delta;
                    }
                }
            }
            _ => {}
        },
    )
    .expect("session should reach a result");
    Transcript {
        result: done.result,
        accepted_program,
        counters,
    }
}

fn counter(t: &Transcript, name: &str) -> u64 {
    t.counters.get(name).copied().unwrap_or(0)
}

#[test]
fn repeated_submission_hits_the_cache_and_stays_bit_identical() {
    let (endpoint, server) = boot("warm");
    let baseline = run_chase_task(&ChaseTaskSpec::restricted(FINITE), &mut NullObserver, None)
        .expect("baseline run");
    let baseline = format!("{:016x}", baseline.fingerprint());

    let request = |id: &str, source: &str| {
        format!(
            r#"{{"op":"chase","id":"{id}","program":"{}","telemetry":true}}"#,
            escaped(source)
        )
    };

    // Cold: one compile, one miss, no hits.
    let cold = run_traced(&endpoint, &request("w-cold", FINITE));
    assert_eq!(result_str(&cold.result, "status"), "ok");
    assert_eq!(result_str(&cold.result, "fingerprint"), baseline);
    assert_eq!(counter(&cold, "server.program_cache.misses"), 1);
    assert_eq!(counter(&cold, "server.program_cache.compiles"), 1);
    assert_eq!(counter(&cold, "server.program_cache.hits"), 0);
    let fp = cold
        .accepted_program
        .expect("accepted carries the program fingerprint");
    assert_eq!(fp.len(), 32, "fingerprint is 32 hex digits: {fp}");

    // Warm: byte-identical resubmission is a pure hit — no compile.
    let warm = run_traced(&endpoint, &request("w-warm", FINITE));
    assert_eq!(counter(&warm, "server.program_cache.hits"), 1);
    assert_eq!(counter(&warm, "server.program_cache.compiles"), 0);
    assert_eq!(warm.accepted_program.as_deref(), Some(fp.as_str()));
    assert_eq!(
        result_str(&warm.result, "fingerprint"),
        baseline,
        "cache-hit session must be bit-identical to the cold run"
    );

    // Reformatted-but-equivalent source pays one compile, then dedups
    // onto the same cache entry (same canonical fingerprint).
    let reformatted = "  R( a ,b ).\n\nR(u,  w)   ->  S(u).";
    let dedup = run_traced(&endpoint, &request("w-dedup", reformatted));
    assert_eq!(dedup.accepted_program.as_deref(), Some(fp.as_str()));
    assert_eq!(result_str(&dedup.result, "fingerprint"), baseline);

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn decide_verdicts_are_memoized_per_fingerprint() {
    let (endpoint, server) = boot("decide");
    let request = |id: &str| {
        format!(
            r#"{{"op":"decide","id":"{id}","program":"{}","telemetry":true}}"#,
            escaped(INFINITE)
        )
    };

    let cold = run_traced(&endpoint, &request("d-cold"));
    assert_eq!(result_str(&cold.result, "status"), "ok");
    assert_eq!(result_str(&cold.result, "verdict"), "non_terminating");
    assert_eq!(
        cold.result.get("cached").and_then(Scalar::as_bool),
        Some(false)
    );
    assert_eq!(counter(&cold, "server.decide_cache.misses"), 1);

    let warm = run_traced(&endpoint, &request("d-warm"));
    assert_eq!(result_str(&warm.result, "verdict"), "non_terminating");
    assert_eq!(
        warm.result.get("cached").and_then(Scalar::as_bool),
        Some(true),
        "second decide of the same program must be served from cache"
    );
    assert_eq!(counter(&warm, "server.decide_cache.hits"), 1);
    assert_eq!(counter(&warm, "server.decide_cache.misses"), 0);

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn program_ref_misses_then_falls_back_then_serves_warm() {
    let (endpoint, server) = boot("ref");
    // The client computes the same canonical fingerprint the server
    // will: content addressing is symmetric.
    let fp = compile(FINITE)
        .expect("client-side compile")
        .fingerprint()
        .to_hex();
    let ref_line = |id: &str| format!(r#"{{"op":"chase","id":"{id}","program_ref":"{fp}"}}"#);
    let full_line = format!(
        r#"{{"op":"chase","id":"r-fallback","program":"{}"}}"#,
        escaped(FINITE)
    );

    // Pure-ref submission against a cold cache: typed miss.
    let miss = run_session(
        &endpoint,
        &ref_line("r-miss"),
        &ClientConfig::default(),
        |_| {},
    );
    match miss {
        Err(ClientError::UnknownProgram(missed)) => assert_eq!(missed, fp),
        other => panic!("expected UnknownProgram, got {other:?}"),
    }

    // Ref with a full-source fallback: one extra round trip, result
    // delivered, cache now warm.
    let done = run_session_with_fallback(
        &endpoint,
        &ref_line("r-try"),
        Some(&full_line),
        &ClientConfig::default(),
        |_| {},
    )
    .expect("fallback session");
    assert_eq!(result_str(&done.result, "status"), "ok");
    assert_eq!(result_str(&done.result, "outcome"), "terminated");

    // Pure-ref submission now resolves without any source on the wire.
    let warm = run_session(
        &endpoint,
        &ref_line("r-warm"),
        &ClientConfig::default(),
        |_| {},
    )
    .expect("warm ref session");
    assert_eq!(result_str(&warm.result, "outcome"), "terminated");

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn malformed_programs_are_rejected_at_admission() {
    let (endpoint, server) = boot("reject");

    // A chase with garbage source gets a typed parse_error before any
    // scheduler slot is consumed (elapsed_ms 0: no session ever ran).
    let done = run_session(
        &endpoint,
        r#"{"op":"chase","id":"bad-chase","program":"this is not a program"}"#,
        &ClientConfig::default(),
        |_| {},
    )
    .expect("rejection is a typed result, not a dropped connection");
    assert_eq!(result_str(&done.result, "status"), "parse_error");
    assert_eq!(
        done.result.get("elapsed_ms").and_then(Scalar::as_num),
        Some(0)
    );

    let done = run_session(
        &endpoint,
        r#"{"op":"decide","id":"bad-decide","program":"R(x -> "}"#,
        &ClientConfig::default(),
        |_| {},
    )
    .expect("decide rejection is typed too");
    assert_eq!(result_str(&done.result, "status"), "parse_error");

    // The server is unharmed: a healthy session still completes.
    let healthy = run_session(
        &endpoint,
        &format!(
            r#"{{"op":"chase","id":"ok-after","program":"{}"}}"#,
            escaped(FINITE)
        ),
        &ClientConfig::default(),
        |_| {},
    )
    .expect("healthy session after rejections");
    assert_eq!(result_str(&healthy.result, "outcome"), "terminated");

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn abortive_shutdown_cancels_running_sessions() {
    let (endpoint, server) = boot("abort");

    // A session that only a cancellation can end promptly (the 30s
    // deadline is a suite-safety net, not the expected exit).
    let request = format!(
        r#"{{"op":"chase","id":"s-abort","program":"{}","deadline_ms":30000}}"#,
        escaped(INFINITE)
    );
    let client = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            run_session(&endpoint, &request, &ClientConfig::default(), |_| {})
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    let started = std::time::Instant::now();
    let ack = request_once(&endpoint, r#"{"op":"shutdown","mode":"abort"}"#).expect("abort ack");
    assert_eq!(
        ack.get("type").and_then(Scalar::as_str),
        Some("shutdown_ack")
    );
    assert_eq!(ack.get("mode").and_then(Scalar::as_str), Some("abort"));

    // The in-flight session ends cancelled — long before its deadline.
    let done = client
        .join()
        .expect("client thread")
        .expect("aborted session still delivers its result");
    assert_eq!(result_str(&done.result, "status"), "ok");
    assert_eq!(result_str(&done.result, "outcome"), "cancelled");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "abort must not wait out the 30s deadline"
    );

    server.join().expect("server thread");
}
