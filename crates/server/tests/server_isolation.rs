//! Acceptance suite for session isolation and graceful degradation:
//! a resident server on a throwaway socket survives panicking,
//! deadline-exhausted and cancelled sessions while delivering results
//! for well-behaved concurrent sessions that are **bit-identical**
//! (fingerprint-compared) to direct in-process engine runs — and keeps
//! serving afterwards.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use chase_engine::governor::Budget;
use chase_engine::task::{run_chase_task, ChaseTaskSpec};
use chase_server::client::{request_once, run_session, ClientConfig};
use chase_server::scheduler::SchedulerConfig;
use chase_server::server::{Endpoint, Server, ServerConfig};
use chase_telemetry::json::Scalar;
use chase_telemetry::NullObserver;

const FINITE: &str = "R(a,b).\nR(x,y) -> S(x).\n";
const INFINITE: &str = "R(a,b).\nR(x,y) -> exists z. R(y,z).\n";

/// Boots a server on a fresh unix socket inside a private temp dir;
/// returns the endpoint and the server thread's join handle.
fn boot(config: ServerConfig, tag: &str) -> (Endpoint, std::thread::JoinHandle<()>) {
    let dir = std::env::temp_dir().join(format!("chase-server-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create socket dir");
    let endpoint = Endpoint::Unix(dir.join("chase.sock"));
    let server = Server::bind(&endpoint, config).expect("bind server");
    let bound = server.endpoint().clone();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (bound, handle)
}

fn shutdown(endpoint: &Endpoint) {
    let ack = request_once(endpoint, r#"{"op":"shutdown"}"#).expect("shutdown ack");
    assert_eq!(
        ack.get("type").and_then(Scalar::as_str),
        Some("shutdown_ack")
    );
}

fn escaped(program: &str) -> String {
    let mut out = String::new();
    chase_telemetry::event::escape_json(&mut out, program);
    out
}

fn result_str<'a>(result: &'a BTreeMap<String, Scalar>, key: &str) -> &'a str {
    result
        .get(key)
        .and_then(Scalar::as_str)
        .unwrap_or_else(|| panic!("result missing string field {key}: {result:?}"))
}

/// Fingerprint of a direct, in-process run of the same work.
fn baseline_fingerprint(spec: &ChaseTaskSpec) -> String {
    let out = run_chase_task(spec, &mut NullObserver, None).expect("baseline run");
    format!("{:016x}", out.fingerprint())
}

#[test]
fn concurrent_faulty_sessions_do_not_disturb_healthy_ones() {
    let (endpoint, server) = boot(
        ServerConfig {
            scheduler: SchedulerConfig {
                runners: 4,
                tenant_queue_cap: 8,
                global_queue_cap: 64,
                retry_after_ms: 10,
            },
            ..ServerConfig::default()
        },
        "isolation",
    );

    // Baselines computed in-process, before the server sees anything.
    let finite_spec = ChaseTaskSpec::restricted(FINITE);
    let mut capped_spec = ChaseTaskSpec::restricted(INFINITE);
    capped_spec.budget = Budget::steps(64);
    capped_spec.threads = Some(2);
    let finite_baseline = baseline_fingerprint(&finite_spec);
    let capped_baseline = baseline_fingerprint(&capped_spec);

    // Four sessions in flight at once, each on its own connection:
    //  s-panic    — injected task panic at step 3;
    //  s-deadline — non-terminating, killed by a real 150ms deadline;
    //  s-finite   — healthy, sequential;
    //  s-capped   — healthy, parallel (threads 2), budget-capped.
    let requests = [
        format!(
            r#"{{"op":"chase","id":"s-panic","tenant":"chaos","program":"{}","fault_task_panic_at":3}}"#,
            escaped(INFINITE)
        ),
        format!(
            r#"{{"op":"chase","id":"s-deadline","tenant":"chaos","program":"{}","deadline_ms":150}}"#,
            escaped(INFINITE)
        ),
        format!(
            r#"{{"op":"chase","id":"s-finite","tenant":"steady","program":"{}"}}"#,
            escaped(FINITE)
        ),
        format!(
            r#"{{"op":"chase","id":"s-capped","tenant":"steady","program":"{}","max_steps":64,"threads":2}}"#,
            escaped(INFINITE)
        ),
    ];
    let endpoint = Arc::new(endpoint);
    let mut clients = Vec::new();
    for request in requests {
        let endpoint = Arc::clone(&endpoint);
        clients.push(std::thread::spawn(move || {
            run_session(&endpoint, &request, &ClientConfig::default(), |_| {})
                .expect("session should reach a result")
        }));
    }
    let mut results: BTreeMap<String, BTreeMap<String, Scalar>> = BTreeMap::new();
    for client in clients {
        let done = client.join().expect("client thread");
        let id = result_str(&done.result, "id").to_string();
        results.insert(id, done.result);
    }

    let panicked = &results["s-panic"];
    assert_eq!(result_str(panicked, "status"), "panicked");
    assert!(result_str(panicked, "error").contains("injected"));

    let deadline = &results["s-deadline"];
    assert_eq!(result_str(deadline, "status"), "ok");
    assert_eq!(result_str(deadline, "outcome"), "deadline_exceeded");

    let finite = &results["s-finite"];
    assert_eq!(result_str(finite, "status"), "ok");
    assert_eq!(result_str(finite, "outcome"), "terminated");
    assert_eq!(
        result_str(finite, "fingerprint"),
        finite_baseline,
        "healthy session must be bit-identical to a standalone run"
    );

    let capped = &results["s-capped"];
    assert_eq!(result_str(capped, "status"), "ok");
    assert_eq!(result_str(capped, "outcome"), "budget_exhausted");
    assert_eq!(
        result_str(capped, "fingerprint"),
        capped_baseline,
        "parallel session through the shared pool must match a standalone run"
    );

    // The server (and its runners) survived the panic: a fresh request
    // on a fresh connection still completes, bit-identically.
    let after = run_session(
        &endpoint,
        &format!(
            r#"{{"op":"chase","id":"s-after","program":"{}"}}"#,
            escaped(FINITE)
        ),
        &ClientConfig::default(),
        |_| {},
    )
    .expect("server keeps serving after a contained panic");
    assert_eq!(result_str(&after.result, "fingerprint"), finite_baseline);

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn cancel_request_stops_a_running_session() {
    let (endpoint, server) = boot(ServerConfig::default(), "cancel");
    // Unbounded non-terminating session: only the cancel op can end it
    // (give it a long fallback deadline so a failed cancel cannot hang
    // the suite forever).
    let request = format!(
        r#"{{"op":"chase","id":"s-cancel","program":"{}","deadline_ms":30000}}"#,
        escaped(INFINITE)
    );
    let canceller = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            // Let the session get past admission and into its run.
            std::thread::sleep(Duration::from_millis(100));
            request_once(&endpoint, r#"{"op":"cancel","id":"s-cancel"}"#).expect("cancel ack")
        })
    };
    let done = run_session(&endpoint, &request, &ClientConfig::default(), |_| {})
        .expect("cancelled session still delivers a result");
    assert_eq!(result_str(&done.result, "status"), "ok");
    assert_eq!(result_str(&done.result, "outcome"), "cancelled");
    let ack = canceller.join().expect("canceller thread");
    assert_eq!(ack.get("type").and_then(Scalar::as_str), Some("cancel_ack"));
    assert_eq!(ack.get("known").and_then(Scalar::as_str), Some("true"));

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn telemetry_streams_per_session_and_degrades_on_socket_fault() {
    let (endpoint, server) = boot(ServerConfig::default(), "telemetry");

    // Healthy telemetry: every event line carries the session id. The
    // program cache emits its admission counters (`server.*`) on the
    // same stream but outside the session's own `events_sent`
    // accounting, so tally them separately.
    let mut event_ids = Vec::new();
    let mut admission_events = 0u64;
    let done = run_session(
        &endpoint,
        &format!(
            r#"{{"op":"chase","id":"s-tel","program":"{}","max_steps":10,"telemetry":true}}"#,
            escaped(INFINITE)
        ),
        &ClientConfig::default(),
        |line| {
            if line.get("type").and_then(Scalar::as_str) == Some("event") {
                event_ids.push(line.get("id").and_then(Scalar::as_str).map(String::from));
                if line
                    .get("name")
                    .and_then(Scalar::as_str)
                    .is_some_and(|n| n.starts_with("server."))
                {
                    admission_events += 1;
                }
            }
        },
    )
    .expect("telemetry session");
    assert!(done.events > admission_events, "expected streamed events");
    assert!(event_ids.iter().all(|id| id.as_deref() == Some("s-tel")));
    assert_eq!(
        done.result.get("events_sent").and_then(Scalar::as_num),
        Some(done.events - admission_events)
    );

    // Injected socket failure after 2 event writes: the session keeps
    // running, drops the rest, and still reports its result.
    let done = run_session(
        &endpoint,
        &format!(
            r#"{{"op":"chase","id":"s-deg","program":"{}","max_steps":10,"telemetry":true,"fault_socket_fail_after":2}}"#,
            escaped(INFINITE)
        ),
        &ClientConfig::default(),
        |_| {},
    )
    .expect("degraded session still completes");
    assert_eq!(result_str(&done.result, "status"), "ok");
    assert_eq!(result_str(&done.result, "outcome"), "budget_exhausted");
    // 2 session events pre-fault, plus one admission-time cache-hit
    // counter (the program was cached by the session above, and the
    // injected fault only degrades the session's own stream).
    assert_eq!(done.events, 3, "exactly the pre-fault events arrive");
    assert_eq!(
        done.result.get("events_sent").and_then(Scalar::as_num),
        Some(2)
    );
    let dropped = done
        .result
        .get("events_dropped")
        .and_then(Scalar::as_num)
        .expect("dropped count");
    assert!(dropped > 0, "post-fault events must be counted as dropped");

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn overload_sheds_with_retry_hint_and_backoff_recovers() {
    let (endpoint, server) = boot(
        ServerConfig {
            scheduler: SchedulerConfig {
                runners: 1,
                tenant_queue_cap: 1,
                global_queue_cap: 2,
                retry_after_ms: 10,
            },
            ..ServerConfig::default()
        },
        "overload",
    );

    // Flood a 1-runner, 1-deep server with short deadline-bound
    // sessions; at least one submission must be shed with a typed
    // overloaded reply (never a hang, never a silent drop).
    let mut flood = Vec::new();
    for i in 0..4 {
        let endpoint = endpoint.clone();
        let request = format!(
            r#"{{"op":"chase","id":"s-flood-{i}","tenant":"noisy","program":"{}","deadline_ms":200}}"#,
            escaped(INFINITE)
        );
        flood.push(std::thread::spawn(move || {
            run_session(
                &endpoint,
                &request,
                // No retries: we want to observe the shed itself.
                &ClientConfig {
                    retries: 0,
                    ..ClientConfig::default()
                },
                |_| {},
            )
        }));
    }
    let outcomes: Vec<_> = flood.into_iter().map(|t| t.join().unwrap()).collect();
    let shed = outcomes
        .iter()
        .filter(|r| matches!(r, Err(chase_server::client::ClientError::Overloaded(_))))
        .count();
    let served = outcomes.iter().filter(|r| r.is_ok()).count();
    assert_eq!(
        shed + served,
        4,
        "every submission ends typed: {outcomes:?}"
    );
    assert!(shed >= 1, "a 4-deep flood of a 1-slot queue must shed");
    assert!(served >= 1, "admitted sessions must still be served");

    // With retry + backoff, a patient client gets in once the flood
    // drains.
    let done = run_session(
        &endpoint,
        &format!(
            r#"{{"op":"chase","id":"s-patient","tenant":"noisy","program":"{}"}}"#,
            escaped(FINITE)
        ),
        &ClientConfig {
            retries: 20,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(500),
            jitter_seed: 7,
        },
        |_| {},
    )
    .expect("retrying client eventually admitted");
    assert_eq!(result_str(&done.result, "outcome"), "terminated");

    shutdown(&endpoint);
    server.join().expect("server thread");
}

#[test]
fn shutdown_drains_in_flight_sessions_before_exit() {
    let (endpoint, server) = boot(ServerConfig::default(), "drain");

    // A session slow enough to still be running when shutdown lands.
    let request = format!(
        r#"{{"op":"chase","id":"s-drain","program":"{}","deadline_ms":400}}"#,
        escaped(INFINITE)
    );
    let client = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            run_session(&endpoint, &request, &ClientConfig::default(), |_| {})
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    shutdown(&endpoint);

    // Drain semantics: the in-flight session still delivers its
    // result...
    let done = client
        .join()
        .expect("client thread")
        .expect("in-flight session survives shutdown");
    assert_eq!(result_str(&done.result, "status"), "ok");
    assert_eq!(result_str(&done.result, "outcome"), "deadline_exceeded");

    // ...the server process exits...
    server.join().expect("server thread");

    // ...and new sessions find nobody listening.
    let refused = run_session(
        &endpoint,
        &format!(
            r#"{{"op":"chase","id":"s-late","program":"{}"}}"#,
            escaped(FINITE)
        ),
        &ClientConfig {
            retries: 0,
            ..ClientConfig::default()
        },
        |_| {},
    );
    assert!(refused.is_err(), "the drained server must be gone");
}

#[test]
fn decide_sessions_run_through_the_same_scheduler() {
    let (endpoint, server) = boot(ServerConfig::default(), "decide");

    let done = run_session(
        &endpoint,
        // Guarded and terminating.
        r#"{"op":"decide","id":"d-term","program":"R(x,y) -> S(x)."}"#,
        &ClientConfig::default(),
        |_| {},
    )
    .expect("decide session");
    assert_eq!(result_str(&done.result, "status"), "ok");
    assert_eq!(result_str(&done.result, "verdict"), "terminating");

    let done = run_session(
        &endpoint,
        r#"{"op":"decide","id":"d-non","program":"R(x,y) -> exists z. R(y,z)."}"#,
        &ClientConfig::default(),
        |_| {},
    )
    .expect("decide session");
    assert_eq!(result_str(&done.result, "verdict"), "non_terminating");

    shutdown(&endpoint);
    server.join().expect("server thread");
}
