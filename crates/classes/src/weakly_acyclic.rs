//! Weak acyclicity [Fagin, Kolaitis, Miller & Popa, TCS 2005] — the
//! standard sufficient condition for all-instances restricted chase
//! termination, used as a baseline (experiment E8).
//!
//! The *dependency graph* has one node per schema position. For each
//! TGD σ and each frontier variable `x` occurring in the body at
//! position `π`:
//!
//! * a **regular** edge `π → π'` for every head position `π'` of `x`;
//! * a **special** edge `π → π''` for every position `π''` of an
//!   existentially quantified variable in the head.
//!
//! The set is weakly acyclic iff no cycle passes through a special
//! edge, equivalently: no strongly connected component contains a
//! special edge.

use chase_core::atom::Position;
use chase_core::ids::{fx_map, FxHashMap};
use chase_core::term::Term;
use chase_core::tgd::TgdSet;

/// The position dependency graph of a TGD set.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// All positions, densely numbered.
    pub positions: Vec<Position>,
    /// `(from, to, special)` edges over dense indexes.
    pub edges: Vec<(usize, usize, bool)>,
    index_of: FxHashMap<Position, usize>,
}

impl DependencyGraph {
    /// Builds the dependency graph of `set` given each predicate's
    /// arity via the vocabulary.
    pub fn build(set: &TgdSet, vocab: &chase_core::vocab::Vocabulary) -> Self {
        let mut positions = Vec::new();
        let mut index_of = fx_map();
        for &pred in set.schema_preds() {
            for i in 0..vocab.arity(pred) {
                let p = Position::new(pred, i);
                index_of.insert(p, positions.len());
                positions.push(p);
            }
        }
        let mut edges = Vec::new();
        for tgd in set.tgds() {
            // Body positions of every frontier variable.
            for &x in tgd.frontier() {
                let mut body_positions = Vec::new();
                for atom in tgd.body() {
                    for i in atom.positions_of_var(x) {
                        body_positions.push(Position::new(atom.pred, i));
                    }
                }
                for head in tgd.head() {
                    // Regular edges to x's head positions.
                    for i in head.positions_of_var(x) {
                        let to = index_of[&Position::new(head.pred, i)];
                        for &from in &body_positions {
                            edges.push((index_of[&from], to, false));
                        }
                    }
                    // Special edges to existential positions.
                    for (i, t) in head.args.iter().enumerate() {
                        if let Term::Var(v) = t {
                            if tgd.is_existential(*v) {
                                let to = index_of[&Position::new(head.pred, i)];
                                for &from in &body_positions {
                                    edges.push((index_of[&from], to, true));
                                }
                            }
                        }
                    }
                }
            }
        }
        edges.sort();
        edges.dedup();
        DependencyGraph {
            positions,
            edges,
            index_of,
        }
    }

    /// The dense index of a position, if it exists in the graph.
    pub fn index(&self, p: Position) -> Option<usize> {
        self.index_of.get(&p).copied()
    }

    /// Tarjan SCC over the dense graph; returns a component id per node.
    fn sccs(&self) -> Vec<usize> {
        let n = self.positions.len();
        let mut adj = vec![Vec::new(); n];
        for &(f, t, _) in &self.edges {
            adj[f].push(t);
        }
        // Iterative Tarjan.
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack = Vec::new();
        let mut comp = vec![usize::MAX; n];
        let mut next_index = 0usize;
        let mut next_comp = 0usize;
        #[derive(Clone)]
        struct Frame {
            v: usize,
            child: usize,
        }
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            let mut call_stack = vec![Frame { v: root, child: 0 }];
            index[root] = next_index;
            low[root] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root] = true;
            while let Some(frame) = call_stack.last().cloned() {
                let v = frame.v;
                if frame.child < adj[v].len() {
                    let w = adj[v][frame.child];
                    call_stack.last_mut().expect("nonempty").child += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        call_stack.push(Frame { v: w, child: 0 });
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    call_stack.pop();
                    if let Some(parent) = call_stack.last() {
                        let p = parent.v;
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("scc stack nonempty");
                            on_stack[w] = false;
                            comp[w] = next_comp;
                            if w == v {
                                break;
                            }
                        }
                        next_comp += 1;
                    }
                }
            }
        }
        comp
    }

    /// Whether some cycle passes through a special edge.
    pub fn has_special_cycle(&self) -> bool {
        let comp = self.sccs();
        self.edges
            .iter()
            .any(|&(f, t, special)| special && comp[f] == comp[t])
    }

    /// The *rank* bound of weak acyclicity: an upper bound on the
    /// number of special edges along any path, usable to bound chase
    /// depth. `None` if the graph has a special cycle.
    pub fn max_special_rank(&self) -> Option<usize> {
        if self.has_special_cycle() {
            return None;
        }
        // Longest path by special-edge count over the condensed DAG;
        // computed by iterating to fixpoint (graph is small).
        // rank[t] = max over incoming edges of rank[f] + [special].
        // Converges because ranks are bounded by the special-edge
        // count (no special cycles) and only ever increase.
        let n = self.positions.len();
        let mut rank = vec![0usize; n];
        loop {
            let mut changed = false;
            for &(f, t, special) in &self.edges {
                let candidate = rank[f] + usize::from(special);
                if candidate > rank[t] {
                    rank[t] = candidate;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        rank.into_iter().max().or(Some(0))
    }
}

/// Whether the TGD set is weakly acyclic.
pub fn is_weakly_acyclic(set: &TgdSet, vocab: &chase_core::vocab::Vocabulary) -> bool {
    !DependencyGraph::build(set, vocab).has_special_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_tgds;
    use chase_core::vocab::Vocabulary;

    fn check(src: &str) -> bool {
        let mut vocab = Vocabulary::new();
        let set = parse_tgds(src, &mut vocab).unwrap();
        is_weakly_acyclic(&set, &vocab)
    }

    #[test]
    fn intro_left_recursion_is_weakly_acyclic() {
        // R(x,y) -> ∃z R(x,z): special edge (R,1)→(R,2), regular
        // self-loop on (R,1); no cycle through the special edge.
        assert!(check("R(x,y) -> exists z. R(x,z)."));
    }

    #[test]
    fn right_recursion_is_not_weakly_acyclic() {
        // R(x,y) -> ∃z R(y,z): (R,2)→(R,1) regular and (R,1)→(R,2),
        // (R,2)→(R,2) special — special edge inside a cycle.
        assert!(!check("R(x,y) -> exists z. R(y,z)."));
    }

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        assert!(check("E(x,y), E(y,z) -> E(x,z)."));
        assert!(check(
            "R(x,y) -> S(y,x).
             S(u,v) -> R(u,v)."
        ));
    }

    #[test]
    fn data_exchange_style_copy_is_weakly_acyclic() {
        assert!(check(
            "Emp(e,d) -> exists m. Mgr(d,m).
             Mgr(d,m) -> InDept(m,d)."
        ));
    }

    #[test]
    fn two_rule_existential_cycle_detected() {
        assert!(!check(
            "A(x) -> exists y. B(x,y).
             B(u,v) -> A(v)."
        ));
    }

    #[test]
    fn rank_bound_none_iff_cyclic() {
        let mut vocab = Vocabulary::new();
        let wa = parse_tgds("R(x,y) -> exists z. R(x,z).", &mut vocab).unwrap();
        let g = DependencyGraph::build(&wa, &vocab);
        assert_eq!(g.max_special_rank(), Some(1));
        let mut vocab2 = Vocabulary::new();
        let non = parse_tgds("R(x,y) -> exists z. R(y,z).", &mut vocab2).unwrap();
        let g2 = DependencyGraph::build(&non, &vocab2);
        assert_eq!(g2.max_special_rank(), None);
    }

    #[test]
    fn positions_enumerated_densely() {
        let mut vocab = Vocabulary::new();
        let set = parse_tgds("R(x,y) -> exists z. S(y,z,x).", &mut vocab).unwrap();
        let g = DependencyGraph::build(&set, &vocab);
        assert_eq!(g.positions.len(), 5);
        for p in &g.positions {
            assert!(g.index(*p).is_some());
        }
    }
}
