//! # tgd-classes
//!
//! Recognisers for the TGD classes of *All-Instances Restricted Chase
//! Termination* (PODS 2020) — guardedness, linearity and stickiness
//! (Section 2) — plus the classic baseline termination criteria used
//! for comparison: weak acyclicity and Marnette's critical-database
//! criterion for the (semi-)oblivious chase.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod guarded;
pub mod jointly_acyclic;
pub mod profile;
pub mod sticky;
pub mod weakly_acyclic;

/// One-stop imports for downstream crates and examples.
pub mod prelude {
    pub use crate::baselines::{oblivious_critical, semi_oblivious_critical, CriterionOutcome};
    pub use crate::guarded::{
        all_guarded, all_linear, guard_index, guard_of, is_guarded, is_linear,
    };
    pub use crate::jointly_acyclic::is_jointly_acyclic;
    pub use crate::profile::ClassProfile;
    pub use crate::sticky::{check_sticky, is_sticky, Marking, StickinessViolation};
    pub use crate::weakly_acyclic::{is_weakly_acyclic, DependencyGraph};
}
