//! Guardedness and linearity (Section 2 of the paper).
//!
//! A TGD is *guarded* if some body atom — the guard — contains every
//! variable occurring in the body; when several atoms qualify, the
//! paper fixes the left-most one. A TGD is *linear* if its body is a
//! single atom (hence trivially guarded).

use chase_core::ids::VarId;
use chase_core::tgd::{Tgd, TgdId, TgdSet};

/// Returns the index (within the body) of the guard of `tgd` — the
/// left-most body atom containing all body variables — or `None` if
/// the TGD is not guarded.
pub fn guard_index(tgd: &Tgd) -> Option<usize> {
    let all_vars: Vec<VarId> = tgd.body_vars().to_vec();
    tgd.body().iter().position(|atom| {
        all_vars
            .iter()
            .all(|v| atom.args.iter().any(|t| t.as_var() == Some(*v)))
    })
}

/// Whether the TGD is guarded.
pub fn is_guarded(tgd: &Tgd) -> bool {
    guard_index(tgd).is_some()
}

/// Whether the TGD is linear (single body atom).
pub fn is_linear(tgd: &Tgd) -> bool {
    tgd.body().len() == 1
}

/// Whether every TGD in the set is guarded (the class `G` of the
/// paper, modulo single-headedness which is checked separately).
pub fn all_guarded(set: &TgdSet) -> bool {
    set.tgds().iter().all(is_guarded)
}

/// Whether every TGD in the set is linear.
pub fn all_linear(set: &TgdSet) -> bool {
    set.tgds().iter().all(is_linear)
}

/// Guard indexes for a whole set: `guards[i]` is the guard's body
/// position for TGD `i`, or `None` if TGD `i` is unguarded.
pub fn guard_table(set: &TgdSet) -> Vec<Option<usize>> {
    set.tgds().iter().map(guard_index).collect()
}

/// Looks up the guard index for one TGD of a set (convenience for the
/// `RealOchase::guard_parent` callback).
pub fn guard_of(set: &TgdSet, id: TgdId) -> Option<usize> {
    guard_index(set.tgd(id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_tgds;
    use chase_core::vocab::Vocabulary;

    fn set(src: &str) -> (Vocabulary, TgdSet) {
        let mut vocab = Vocabulary::new();
        let s = parse_tgds(src, &mut vocab).unwrap();
        (vocab, s)
    }

    #[test]
    fn linear_tgds_are_guarded() {
        let (_, s) = set("R(x,y) -> exists z. R(y,z).");
        assert!(all_linear(&s));
        assert!(all_guarded(&s));
        assert_eq!(guard_index(&s.tgds()[0]), Some(0));
    }

    #[test]
    fn guard_detected_among_side_atoms() {
        // G(x,y,z) guards; S(x), P(y,z) are side atoms.
        let (_, s) = set("S(x), G(x,y,z), P(y,z) -> exists w. H(x,w).");
        assert!(!all_linear(&s));
        assert!(all_guarded(&s));
        assert_eq!(guard_index(&s.tgds()[0]), Some(1));
    }

    #[test]
    fn leftmost_guard_chosen() {
        let (_, s) = set("G(x,y), H(y,x) -> exists w. K(x,w).");
        assert_eq!(guard_index(&s.tgds()[0]), Some(0));
    }

    #[test]
    fn unguarded_join_detected() {
        // The classic cartesian join: no atom sees both x and z.
        let (_, s) = set("R(x,y), P(y,z) -> exists w. T(x,y,w).");
        assert!(!all_guarded(&s));
        assert_eq!(guard_index(&s.tgds()[0]), None);
    }

    #[test]
    fn example_5_6_is_guarded() {
        let (_, s) = set("S(x1,y1) -> T(x1).
             R(x2,y2), T(y2) -> P(x2,y2).
             P(x3,y3) -> exists z3. P(y3,z3).");
        assert!(all_guarded(&s));
        let table = guard_table(&s);
        assert_eq!(table, vec![Some(0), Some(0), Some(0)]);
    }
}
