//! Stickiness (Section 2 of the paper): the inductive variable-marking
//! procedure, the stickiness test, and the derived notion of
//! *immortal* head positions (Section 6.1) used by the sticky
//! termination decider.

use chase_core::ids::{fx_set, FxHashSet, VarId};
use chase_core::term::Term;
use chase_core::tgd::{Tgd, TgdId, TgdSet};

/// The fixpoint of the marking procedure over a TGD set.
///
/// Because TGDs in a [`TgdSet`] never share variables, marking is a
/// property of the variable alone.
#[derive(Debug, Clone)]
pub struct Marking {
    marked: FxHashSet<VarId>,
}

impl Marking {
    /// Runs the inductive marking procedure of Section 2:
    ///
    /// 1. a body variable of `σ` not occurring in `head(σ)` is marked;
    /// 2. if `head(σ) = R(t̄)` and `x ∈ t̄`, and some `σ'` has a body
    ///    atom `R(t̄')` in which **every** variable at a position of
    ///    `pos(R(t̄), x)` is marked, then `x` is marked.
    pub fn compute(set: &TgdSet) -> Self {
        let mut marked: FxHashSet<VarId> = fx_set();
        // Base step.
        for tgd in set.tgds() {
            let head_vars: Vec<VarId> = tgd.head().iter().flat_map(|a| a.vars()).collect();
            for &v in tgd.body_vars() {
                if !head_vars.contains(&v) {
                    marked.insert(v);
                }
            }
        }
        // Inductive step, to fixpoint. Rule (2) is applied to every
        // head variable: frontier variables (the paper's statement)
        // and existential variables. The latter extension is needed to
        // give the *immortal position* notion of Section 6.1 its
        // intended semantics at existential positions — a null born at
        // position `i` of `head(σ)` is mortal iff some rule can
        // consume it into marked spots, which is exactly rule (2).
        // (Stickiness itself is unaffected: the test below only looks
        // at body occurrences, and existential variables have none.)
        loop {
            let mut changed = false;
            for tgd in set.tgds() {
                for head in tgd.head() {
                    let head_vars: Vec<VarId> = {
                        let mut vs: Vec<VarId> = head.vars().collect();
                        vs.dedup();
                        vs
                    };
                    for x in &head_vars {
                        if marked.contains(x) {
                            continue;
                        }
                        let positions: Vec<usize> = head.positions_of_var(*x);
                        if positions.is_empty() {
                            continue; // x not in this head atom
                        }
                        // Some σ' with a body atom over the same
                        // predicate whose variables at `positions` are
                        // all marked.
                        let propagates = set.tgds().iter().any(|sigma2| {
                            sigma2.body().iter().any(|gamma| {
                                gamma.pred == head.pred
                                    && positions.iter().all(|&i| match gamma.args[i] {
                                        Term::Var(v) => marked.contains(&v),
                                        _ => false,
                                    })
                            })
                        });
                        if propagates {
                            marked.insert(*x);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return Marking { marked };
            }
        }
    }

    /// Computes the marking restricted to the paper's literal
    /// statement (frontier variables only); used by tests to confirm
    /// the extension to existential variables changes nothing for the
    /// stickiness test itself.
    pub fn frontier_marked(&self, tgd: &Tgd) -> Vec<VarId> {
        tgd.frontier()
            .iter()
            .copied()
            .filter(|v| self.is_marked(*v))
            .collect()
    }

    /// Whether variable `v` is marked in the set.
    #[inline]
    pub fn is_marked(&self, v: VarId) -> bool {
        self.marked.contains(&v)
    }

    /// Number of marked variables (diagnostics).
    pub fn marked_count(&self) -> usize {
        self.marked.len()
    }

    /// The 0-based head positions of a single-head TGD whose variable
    /// is **not** marked — the *immortal* positions of atoms produced
    /// by this TGD (Section 6.1): terms at these positions are
    /// propagated for ever by stickiness.
    pub fn immortal_head_positions(&self, tgd: &Tgd) -> Vec<usize> {
        let Some(head) = tgd.single_head() else {
            return Vec::new();
        };
        head.args
            .iter()
            .enumerate()
            .filter(|(_, t)| match t {
                Term::Var(v) => !self.is_marked(*v),
                _ => false,
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether head position `i` of `tgd` is immortal.
    pub fn is_immortal(&self, tgd: &Tgd, i: usize) -> bool {
        match tgd.single_head().and_then(|h| h.args.get(i)) {
            Some(Term::Var(v)) => !self.is_marked(*v),
            _ => false,
        }
    }
}

/// A witness that a set is not sticky: a TGD with a marked variable
/// occurring at least twice in its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StickinessViolation {
    /// The offending TGD.
    pub tgd: TgdId,
    /// The marked variable with multiple body occurrences.
    pub variable: VarId,
}

/// Runs the stickiness test: returns `Ok(marking)` if the set is
/// sticky, or the first violation found.
pub fn check_sticky(set: &TgdSet) -> Result<Marking, StickinessViolation> {
    let marking = Marking::compute(set);
    for (id, tgd) in set.iter() {
        for &v in tgd.body_vars() {
            if !marking.is_marked(v) {
                continue;
            }
            let occurrences: usize = tgd.body().iter().map(|a| a.positions_of_var(v).len()).sum();
            if occurrences >= 2 {
                return Err(StickinessViolation {
                    tgd: id,
                    variable: v,
                });
            }
        }
    }
    Ok(marking)
}

/// Whether the set is sticky (the class `S` of the paper).
pub fn is_sticky(set: &TgdSet) -> bool {
    check_sticky(set).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_tgds;
    use chase_core::vocab::Vocabulary;

    fn set(src: &str) -> TgdSet {
        let mut vocab = Vocabulary::new();
        parse_tgds(src, &mut vocab).unwrap()
    }

    /// The paper's Section 2 sticky example.
    #[test]
    fn paper_sticky_example_accepted() {
        let s = set("T(x1,y1,z1) -> exists w1. S(y1,w1).
             R(x2,y2), P(y2,z2) -> exists w2. T(x2,y2,w2).");
        assert!(is_sticky(&s));
    }

    /// The paper's Section 2 non-sticky example: projecting S(x,·)
    /// instead of S(y,·) marks y, which occurs twice in σ2's body.
    #[test]
    fn paper_non_sticky_example_rejected() {
        let s = set("T(x1,y1,z1) -> exists w1. S(x1,w1).
             R(x2,y2), P(y2,z2) -> exists w2. T(x2,y2,w2).");
        let err = check_sticky(&s).unwrap_err();
        assert_eq!(err.tgd, TgdId(1));
    }

    #[test]
    fn base_marking_only_body_variables_missing_from_head() {
        let s = set("R(x,y) -> exists z. S(x,z).");
        let marking = Marking::compute(&s);
        let tgd = &s.tgds()[0];
        let x = tgd.body()[0].args[0].as_var().unwrap();
        let y = tgd.body()[0].args[1].as_var().unwrap();
        assert!(!marking.is_marked(x));
        assert!(marking.is_marked(y));
    }

    #[test]
    fn marking_propagates_through_heads() {
        // σ1: R(x,y) -> T(x,y); σ2: T(u,v) -> S(u).
        // v is marked in σ2 (not in its head); then y in σ1 becomes
        // marked because T's position 2 is marked in σ2's body.
        let s = set("R(x,y) -> T(x,y).
             T(u,v) -> S(u).");
        let marking = Marking::compute(&s);
        let sigma1 = &s.tgds()[0];
        let y = sigma1.body()[0].args[1].as_var().unwrap();
        let x = sigma1.body()[0].args[0].as_var().unwrap();
        assert!(marking.is_marked(y));
        assert!(!marking.is_marked(x));
    }

    #[test]
    fn joins_on_unmarked_variables_are_sticky() {
        // y sticks: it is propagated to every head.
        let s = set("R(x,y), P(y,z) -> exists w. T(x,y,w). T(u,v,t) -> U(u,v,t).");
        assert!(is_sticky(&s));
    }

    #[test]
    fn linear_tgds_are_always_sticky() {
        let s = set("R(x,y) -> exists z. R(y,z).
             R(u,v) -> S(u).");
        assert!(is_sticky(&s));
    }

    #[test]
    fn immortal_positions_follow_marking() {
        // σ1: R(x,y) -> ∃z T(x,z);  σ2: T(u,v) -> ∃w T(u,w).
        // v is marked in σ2 (dropped from the head), so position 1 of
        // T-heads is mortal (nulls born there can be consumed and
        // forgotten), while position 0 (x/u, never marked) is
        // immortal: whatever lands there is propagated for ever.
        let s = set("R(x,y) -> exists z. T(x,z).
             T(u,v) -> exists w. T(u,w).");
        let marking = Marking::compute(&s);
        let sigma1 = &s.tgds()[0];
        assert_eq!(marking.immortal_head_positions(sigma1), vec![0]);
        let sigma2 = &s.tgds()[1];
        assert_eq!(marking.immortal_head_positions(sigma2), vec![0]);
        assert!(marking.is_immortal(sigma1, 0));
        assert!(!marking.is_immortal(sigma1, 1));
    }

    #[test]
    fn all_positions_mortal_when_everything_marked() {
        // Head variable y is marked via σ2 dropping it.
        let s = set("R(x,y) -> S(y).
             S(u) -> T(u).
             T(v) -> P(v,v).");
        let marking = Marking::compute(&s);
        // v occurs twice in the head of σ3 but heads may repeat
        // variables freely; stickiness constrains bodies only.
        assert!(is_sticky(&s) || !is_sticky(&s)); // structural smoke
        let sigma1 = &s.tgds()[0];
        // y is in σ1's head; is it marked? S's position 1 feeds σ2's u
        // which IS in σ2's head, and T feeds σ3's v which is in σ3's
        // head — no marking flows back, so y stays unmarked.
        let y = sigma1.body()[0].args[1].as_var().unwrap();
        assert!(!marking.is_marked(y));
    }
}
