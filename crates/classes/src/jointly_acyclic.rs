//! Joint acyclicity [Krötzsch & Rudolph, IJCAI 2011] — a termination
//! criterion strictly between weak acyclicity and semi-oblivious
//! critical-database termination, used as an additional baseline in
//! experiment E8.
//!
//! For each existentially quantified variable `z` of a rule, `Mov(z)`
//! is the least set of positions containing `z`'s head positions and
//! closed under: if a frontier variable `x` of some rule has **all**
//! its body positions inside `Mov(z)`, then `x`'s head positions join
//! `Mov(z)`. The *existential dependency graph* has an edge `z → z'`
//! when the rule introducing `z'` has a frontier variable all of whose
//! body positions lie in `Mov(z)` (a null born for `z` can reach every
//! premise position needed to trigger the invention of a `z'`-null).
//! The set is jointly acyclic iff this graph is acyclic; joint
//! acyclicity implies termination of the semi-oblivious (hence
//! restricted) chase on every database.

use chase_core::atom::Position;
use chase_core::ids::{fx_set, FxHashSet, VarId};
use chase_core::tgd::{TgdId, TgdSet};

/// One existential variable together with its owning rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExVar {
    /// The owning TGD.
    pub tgd: TgdId,
    /// The variable.
    pub var: VarId,
}

/// Body positions of a variable across all body atoms of a rule.
fn body_positions(tgd: &chase_core::tgd::Tgd, v: VarId) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in tgd.body() {
        for i in atom.positions_of_var(v) {
            out.push(Position::new(atom.pred, i));
        }
    }
    out
}

/// Head positions of a variable across all head atoms of a rule.
fn head_positions(tgd: &chase_core::tgd::Tgd, v: VarId) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in tgd.head() {
        for i in atom.positions_of_var(v) {
            out.push(Position::new(atom.pred, i));
        }
    }
    out
}

/// Computes `Mov(z)` for one existential variable.
fn movement(set: &TgdSet, z: ExVar) -> FxHashSet<Position> {
    let mut mov: FxHashSet<Position> = fx_set();
    for p in head_positions(set.tgd(z.tgd), z.var) {
        mov.insert(p);
    }
    loop {
        let mut changed = false;
        for tgd in set.tgds() {
            for &x in tgd.frontier() {
                let body = body_positions(tgd, x);
                if body.is_empty() || !body.iter().all(|p| mov.contains(p)) {
                    continue;
                }
                for p in head_positions(tgd, x) {
                    if mov.insert(p) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return mov;
        }
    }
}

/// All existential variables of the set.
pub fn existential_variables(set: &TgdSet) -> Vec<ExVar> {
    set.iter()
        .flat_map(|(id, tgd)| {
            tgd.existentials()
                .iter()
                .map(move |&var| ExVar { tgd: id, var })
        })
        .collect()
}

/// Whether the set is jointly acyclic.
pub fn is_jointly_acyclic(set: &TgdSet) -> bool {
    let exvars = existential_variables(set);
    let movs: Vec<FxHashSet<Position>> = exvars.iter().map(|&z| movement(set, z)).collect();
    // Edge z -> z' iff the rule of z' has a frontier variable whose
    // body positions all lie in Mov(z).
    let n = exvars.len();
    let mut adj = vec![Vec::new(); n];
    for (i, mov) in movs.iter().enumerate() {
        for (j, z2) in exvars.iter().enumerate() {
            let tgd = set.tgd(z2.tgd);
            let feeds = tgd.frontier().iter().any(|&x| {
                let body = body_positions(tgd, x);
                !body.is_empty() && body.iter().all(|p| mov.contains(p))
            });
            if feeds {
                adj[i].push(j);
            }
        }
    }
    // Acyclicity via Kahn.
    let mut indeg = vec![0usize; n];
    for edges in &adj {
        for &t in edges {
            indeg[t] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut seen = 0usize;
    while let Some(v) = queue.pop() {
        seen += 1;
        for &t in &adj[v] {
            indeg[t] -= 1;
            if indeg[t] == 0 {
                queue.push(t);
            }
        }
    }
    seen == n
}

/// Variables are never shared across rules, but sanity-check the
/// movement sets are monotone under rule addition (test helper).
#[cfg(test)]
fn mov_size(set: &TgdSet, z: ExVar) -> usize {
    movement(set, z).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weakly_acyclic::is_weakly_acyclic;
    use chase_core::parser::parse_tgds;
    use chase_core::vocab::Vocabulary;

    fn check(src: &str) -> (bool, bool) {
        let mut vocab = Vocabulary::new();
        let set = parse_tgds(src, &mut vocab).unwrap();
        (is_weakly_acyclic(&set, &vocab), is_jointly_acyclic(&set))
    }

    #[test]
    fn weakly_acyclic_implies_jointly_acyclic_on_samples() {
        for src in [
            "R(x,y) -> exists z. R(x,z).",
            "E(x,y), E(y,z) -> E(x,z).",
            "Emp(e,d) -> exists m. Mgr(d,m). Mgr(d,m) -> InDept(m,d).",
            "R(x,y) -> exists z. S(y,z). S(u,v) -> T(u).",
        ] {
            let (wa, ja) = check(src);
            assert!(wa, "{src}");
            assert!(ja, "WA must imply JA on {src}");
        }
    }

    #[test]
    fn null_cycles_are_not_jointly_acyclic() {
        let (wa, ja) = check("R(x,y) -> exists z. R(y,z).");
        assert!(!wa);
        assert!(!ja);
        let (wa2, ja2) = check(
            "A(x,y) -> exists z. B(y,z).
             B(u,v) -> exists w. A(v,w).",
        );
        assert!(!wa2 && !ja2);
    }

    #[test]
    fn paired_side_condition_separates_ja_from_wa() {
        // σ1: R(x,y) → ∃z S(y,z);  σ2: S(x,y), S(y,x) → R(x,y).
        // Not WA: (S,2) → (R,1) → special (S,2) cycles. But jointly
        // acyclic: σ2's frontier variables need *both* S positions in
        // Mov(z), and Mov(z) = {(S,2)} only — a z-null can never fill
        // an (S,1) premise, so no z → z edge.
        let (wa, ja) = check(
            "R(x,y) -> exists z. S(y,z).
             S(u,v), S(v,u) -> R(u,v).",
        );
        assert!(!wa);
        assert!(ja);
    }

    #[test]
    fn movement_computation_is_a_fixpoint() {
        let mut vocab = Vocabulary::new();
        let set = parse_tgds(
            "R(x,y) -> exists z. S(y,z).
             S(u,v) -> T(v,u).",
            &mut vocab,
        )
        .unwrap();
        let z = existential_variables(&set)[0];
        // Mov(z): (S,2) plus v's head positions (T,1) plus... u's body
        // position (S,1) is not in Mov, so u does not propagate; then
        // from (T,1) nothing consumes T.
        assert_eq!(mov_size(&set, z), 2);
    }

    #[test]
    fn no_existentials_is_trivially_ja() {
        let (_, ja) = check("E(x,y), E(y,z) -> E(x,z).");
        assert!(ja);
    }
}
