//! A one-call structural profile of a TGD set: which syntactic classes
//! it belongs to and which baseline criteria it satisfies.

use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;
use chase_engine::restricted::Budget;

use crate::baselines::{semi_oblivious_critical, CriterionOutcome};
use crate::guarded::{all_guarded, all_linear};
use crate::jointly_acyclic::is_jointly_acyclic;
use crate::sticky::is_sticky;
use crate::weakly_acyclic::is_weakly_acyclic;

/// Structural class membership and baseline results for a TGD set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassProfile {
    /// Every TGD single-head (precondition of the paper's theorems).
    pub single_head: bool,
    /// Class `G` (all TGDs guarded).
    pub guarded: bool,
    /// All TGDs linear (single body atom); implies guarded.
    pub linear: bool,
    /// Class `S` (sticky).
    pub sticky: bool,
    /// Weakly acyclic (implies `CT^res_∀∀`).
    pub weakly_acyclic: bool,
    /// Jointly acyclic (implies `CT^res_∀∀`; strictly weaker than WA).
    pub jointly_acyclic: bool,
    /// Marnette's criterion: semi-oblivious chase terminates on the
    /// critical database within the analysis budget.
    pub semi_oblivious_critical_terminates: bool,
}

impl ClassProfile {
    /// Analyses the set. The semi-oblivious criterion uses the given
    /// budget (pass [`Budget::steps`] with a few thousand steps for
    /// interactive use).
    pub fn analyse(set: &TgdSet, vocab: &Vocabulary, budget: Budget) -> Self {
        let mut scratch = vocab.clone();
        let so = matches!(
            semi_oblivious_critical(set, &mut scratch, budget),
            CriterionOutcome::Holds { .. }
        );
        ClassProfile {
            single_head: set.all_single_head(),
            guarded: all_guarded(set),
            linear: all_linear(set),
            sticky: is_sticky(set),
            weakly_acyclic: is_weakly_acyclic(set, vocab),
            jointly_acyclic: is_jointly_acyclic(set),
            semi_oblivious_critical_terminates: so,
        }
    }

    /// Whether one of the paper's decidable cases applies (single-head
    /// guarded or single-head sticky).
    pub fn in_decidable_fragment(&self) -> bool {
        self.single_head && (self.guarded || self.sticky)
    }

    /// Renders the profile as a compact single line.
    pub fn summary(&self) -> String {
        let mut tags = Vec::new();
        if self.single_head {
            tags.push("single-head");
        }
        if self.linear {
            tags.push("linear");
        } else if self.guarded {
            tags.push("guarded");
        }
        if self.sticky {
            tags.push("sticky");
        }
        if self.weakly_acyclic {
            tags.push("weakly-acyclic");
        } else if self.jointly_acyclic {
            tags.push("jointly-acyclic");
        }
        if self.semi_oblivious_critical_terminates {
            tags.push("so-critical-terminating");
        }
        if tags.is_empty() {
            "(no recognised class)".to_string()
        } else {
            tags.join(", ")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_tgds;

    fn profile(src: &str) -> ClassProfile {
        let mut vocab = Vocabulary::new();
        let set = parse_tgds(src, &mut vocab).unwrap();
        ClassProfile::analyse(&set, &vocab, Budget::steps(2_000))
    }

    #[test]
    fn linear_rule_profile() {
        let p = profile("R(x,y) -> exists z. R(x,z).");
        assert!(p.single_head && p.linear && p.guarded && p.sticky && p.weakly_acyclic);
        assert!(p.semi_oblivious_critical_terminates);
        assert!(p.in_decidable_fragment());
        assert!(p.summary().contains("linear"));
    }

    #[test]
    fn guarded_not_sticky_profile() {
        // Example 5.6's σ2 has a join on y inside a guard; the set is
        // guarded. Stickiness: y is marked via σ1 dropping it... check
        // structurally rather than by expectation.
        let p = profile(
            "S(x1,y1) -> T(x1).
             R(x2,y2), T(y2) -> P(x2,y2).
             P(x3,y3) -> exists z3. P(y3,z3).",
        );
        assert!(p.single_head && p.guarded && !p.linear);
        assert!(!p.weakly_acyclic); // P(x,y) -> ∃z P(y,z) has a special cycle
        assert!(p.in_decidable_fragment());
    }

    #[test]
    fn unguarded_sticky_profile() {
        let p = profile(
            "T(x1,y1,z1) -> exists w1. S(y1,w1).
             R(x2,y2), P(y2,z2) -> exists w2. T(x2,y2,w2).",
        );
        assert!(!p.guarded && p.sticky);
        assert!(p.in_decidable_fragment());
    }

    #[test]
    fn multi_head_flagged() {
        let p = profile("R(x,y) -> S(x), T(y).");
        assert!(!p.single_head);
        assert!(!p.in_decidable_fragment());
    }
}
