//! Baseline sufficient conditions for all-instances restricted chase
//! termination, used for the E8 comparison:
//!
//! * weak acyclicity (re-exported from [`crate::weakly_acyclic`]);
//! * termination of the **semi-oblivious** chase on the critical
//!   database (Marnette's criterion: the critical database is critical
//!   for the semi-oblivious chase, and semi-oblivious termination for
//!   every database implies restricted termination for every
//!   database);
//! * termination of the **oblivious** chase on the critical database
//!   (a still stronger requirement).
//!
//! Both chase-based checks are budget-bounded: `Some(true)` proves the
//! criterion, `Some(false)` is impossible by construction, and `None`
//! means the budget ran out (the criterion very likely fails; on all
//! suite workloads the budget is decisive).

use chase_core::tgd::TgdSet;
use chase_core::vocab::Vocabulary;
use chase_engine::critical::critical_database;
use chase_engine::oblivious::ObliviousChase;
use chase_engine::restricted::{Budget, Outcome};

/// Outcome of a budget-bounded termination criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CriterionOutcome {
    /// The chase on the critical database reached a fixpoint: the
    /// criterion holds, hence `T ∈ CT^res_∀∀`.
    Holds {
        /// Trigger applications needed to saturate.
        steps: usize,
    },
    /// The budget was exhausted; the criterion is not established
    /// (and, for the workloads in this repository, fails).
    BudgetExhausted,
}

impl CriterionOutcome {
    /// `true` iff the criterion is established.
    pub fn holds(self) -> bool {
        matches!(self, CriterionOutcome::Holds { .. })
    }
}

/// Checks whether the *oblivious* chase terminates on the critical
/// database within the budget.
pub fn oblivious_critical(
    set: &TgdSet,
    vocab: &mut Vocabulary,
    budget: Budget,
) -> CriterionOutcome {
    let db = critical_database(set, vocab);
    let run = ObliviousChase::new(set).run(&db, budget);
    match run.outcome {
        Outcome::Terminated => CriterionOutcome::Holds { steps: run.steps },
        // Interrupted runs are unreachable under a plain `Budget`
        // governor, but they carry the same meaning here: the chase
        // was stopped before reaching a fixpoint, so nothing holds.
        Outcome::BudgetExhausted | Outcome::DeadlineExceeded | Outcome::Cancelled => {
            CriterionOutcome::BudgetExhausted
        }
    }
}

/// Checks whether the *semi-oblivious* chase terminates on the
/// critical database within the budget (Marnette's criterion).
pub fn semi_oblivious_critical(
    set: &TgdSet,
    vocab: &mut Vocabulary,
    budget: Budget,
) -> CriterionOutcome {
    let db = critical_database(set, vocab);
    let run = ObliviousChase::new(set).semi_oblivious().run(&db, budget);
    match run.outcome {
        Outcome::Terminated => CriterionOutcome::Holds { steps: run.steps },
        // Interrupted runs are unreachable under a plain `Budget`
        // governor, but they carry the same meaning here: the chase
        // was stopped before reaching a fixpoint, so nothing holds.
        Outcome::BudgetExhausted | Outcome::DeadlineExceeded | Outcome::Cancelled => {
            CriterionOutcome::BudgetExhausted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_tgds;

    fn outcome(src: &str, semi: bool) -> CriterionOutcome {
        let mut vocab = Vocabulary::new();
        let set = parse_tgds(src, &mut vocab).unwrap();
        let budget = Budget::steps(5_000);
        if semi {
            semi_oblivious_critical(&set, &mut vocab, budget)
        } else {
            oblivious_critical(&set, &mut vocab, budget)
        }
    }

    #[test]
    fn full_tgds_pass_both() {
        let src = "E(x,y), E(y,z) -> E(x,z).";
        assert!(outcome(src, false).holds());
        assert!(outcome(src, true).holds());
    }

    #[test]
    fn intro_rule_separates_the_criteria() {
        // R(x,y) -> ∃z R(x,z): oblivious diverges (new null every
        // round), semi-oblivious terminates (null keyed by frontier x),
        // restricted terminates for all instances. This is the paper's
        // flagship gap between the chase variants.
        let src = "R(x,y) -> exists z. R(x,z).";
        assert_eq!(outcome(src, false), CriterionOutcome::BudgetExhausted);
        assert!(outcome(src, true).holds());
    }

    #[test]
    fn right_recursion_fails_both() {
        let src = "R(x,y) -> exists z. R(y,z).";
        assert_eq!(outcome(src, false), CriterionOutcome::BudgetExhausted);
        assert_eq!(outcome(src, true), CriterionOutcome::BudgetExhausted);
    }

    #[test]
    fn semi_oblivious_divergence_detected() {
        // R(x,y) -> ∃z R(z,x): on the critical database {R(c,c)} the
        // restricted chase stops immediately (z ↦ c satisfies the
        // head), but the semi-oblivious chase keeps inventing nulls —
        // the frontier x takes ever-new values R(n0,c), R(n1,n0), ...
        let src = "R(x,y) -> exists z. R(z,x).";
        assert_eq!(outcome(src, true), CriterionOutcome::BudgetExhausted);
    }
}
