/root/repo/target/debug/deps/chase_workloads-086a83c30edda8f3.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/chase_workloads-086a83c30edda8f3: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/suite.rs:
