/root/repo/target/debug/deps/chase_properties-7a73047621c41a26.d: tests/chase_properties.rs

/root/repo/target/debug/deps/chase_properties-7a73047621c41a26: tests/chase_properties.rs

tests/chase_properties.rs:
