/root/repo/target/debug/deps/chasectl-b856c96d60ac3655.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/debug/deps/chasectl-b856c96d60ac3655: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
