/root/repo/target/debug/deps/chase_automata-6262fd756084940b.d: crates/automata/src/lib.rs crates/automata/src/buchi.rs Cargo.toml

/root/repo/target/debug/deps/libchase_automata-6262fd756084940b.rmeta: crates/automata/src/lib.rs crates/automata/src/buchi.rs Cargo.toml

crates/automata/src/lib.rs:
crates/automata/src/buchi.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
