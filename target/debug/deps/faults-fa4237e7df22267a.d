/root/repo/target/debug/deps/faults-fa4237e7df22267a.d: crates/engine/tests/faults.rs

/root/repo/target/debug/deps/faults-fa4237e7df22267a: crates/engine/tests/faults.rs

crates/engine/tests/faults.rs:
