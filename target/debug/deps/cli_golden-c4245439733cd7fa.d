/root/repo/target/debug/deps/cli_golden-c4245439733cd7fa.d: crates/cli/tests/cli_golden.rs Cargo.toml

/root/repo/target/debug/deps/libcli_golden-c4245439733cd7fa.rmeta: crates/cli/tests/cli_golden.rs Cargo.toml

crates/cli/tests/cli_golden.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_chasectl=placeholder:chasectl
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
