/root/repo/target/debug/deps/chase_workloads-77c3ef642e4d4466.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-77c3ef642e4d4466.rlib: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-77c3ef642e4d4466.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/suite.rs:
