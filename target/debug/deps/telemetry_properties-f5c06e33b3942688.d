/root/repo/target/debug/deps/telemetry_properties-f5c06e33b3942688.d: tests/telemetry_properties.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_properties-f5c06e33b3942688.rmeta: tests/telemetry_properties.rs Cargo.toml

tests/telemetry_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
