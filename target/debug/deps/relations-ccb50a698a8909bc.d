/root/repo/target/debug/deps/relations-ccb50a698a8909bc.d: crates/bench/benches/relations.rs

/root/repo/target/debug/deps/relations-ccb50a698a8909bc: crates/bench/benches/relations.rs

crates/bench/benches/relations.rs:
