/root/repo/target/debug/deps/decider_suite-319dafa92057646b.d: tests/decider_suite.rs

/root/repo/target/debug/deps/decider_suite-319dafa92057646b: tests/decider_suite.rs

tests/decider_suite.rs:
