/root/repo/target/debug/deps/chase_core-59047bac799d4995.d: crates/core/src/lib.rs crates/core/src/atom.rs crates/core/src/cancel.rs crates/core/src/eqtype.rs crates/core/src/error.rs crates/core/src/hom.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/parser.rs crates/core/src/subst.rs crates/core/src/term.rs crates/core/src/tgd.rs crates/core/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libchase_core-59047bac799d4995.rmeta: crates/core/src/lib.rs crates/core/src/atom.rs crates/core/src/cancel.rs crates/core/src/eqtype.rs crates/core/src/error.rs crates/core/src/hom.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/parser.rs crates/core/src/subst.rs crates/core/src/term.rs crates/core/src/tgd.rs crates/core/src/vocab.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/atom.rs:
crates/core/src/cancel.rs:
crates/core/src/eqtype.rs:
crates/core/src/error.rs:
crates/core/src/hom.rs:
crates/core/src/ids.rs:
crates/core/src/instance.rs:
crates/core/src/parser.rs:
crates/core/src/subst.rs:
crates/core/src/term.rs:
crates/core/src/tgd.rs:
crates/core/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
