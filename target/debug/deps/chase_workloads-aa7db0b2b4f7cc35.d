/root/repo/target/debug/deps/chase_workloads-aa7db0b2b4f7cc35.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-aa7db0b2b4f7cc35.rlib: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-aa7db0b2b4f7cc35.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/suite.rs:
