/root/repo/target/debug/deps/universal_model-d8f87111c72b4f8e.d: tests/universal_model.rs

/root/repo/target/debug/deps/universal_model-d8f87111c72b4f8e: tests/universal_model.rs

tests/universal_model.rs:
