/root/repo/target/debug/deps/chasectl-edbedb75b2d2ceef.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/debug/deps/chasectl-edbedb75b2d2ceef: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
