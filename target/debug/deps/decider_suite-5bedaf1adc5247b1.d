/root/repo/target/debug/deps/decider_suite-5bedaf1adc5247b1.d: tests/decider_suite.rs

/root/repo/target/debug/deps/decider_suite-5bedaf1adc5247b1: tests/decider_suite.rs

tests/decider_suite.rs:
