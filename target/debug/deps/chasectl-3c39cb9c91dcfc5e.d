/root/repo/target/debug/deps/chasectl-3c39cb9c91dcfc5e.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/chasectl-3c39cb9c91dcfc5e: crates/cli/src/main.rs

crates/cli/src/main.rs:
