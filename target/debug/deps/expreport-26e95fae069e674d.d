/root/repo/target/debug/deps/expreport-26e95fae069e674d.d: crates/bench/src/bin/expreport.rs

/root/repo/target/debug/deps/expreport-26e95fae069e674d: crates/bench/src/bin/expreport.rs

crates/bench/src/bin/expreport.rs:
