/root/repo/target/debug/deps/chasectl-e6d6af0501b2e8db.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/debug/deps/chasectl-e6d6af0501b2e8db: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
