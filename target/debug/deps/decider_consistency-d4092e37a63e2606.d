/root/repo/target/debug/deps/decider_consistency-d4092e37a63e2606.d: tests/decider_consistency.rs

/root/repo/target/debug/deps/decider_consistency-d4092e37a63e2606: tests/decider_consistency.rs

tests/decider_consistency.rs:
