/root/repo/target/debug/deps/telemetry_golden-843b8c78c7ca56b9.d: tests/telemetry_golden.rs

/root/repo/target/debug/deps/telemetry_golden-843b8c78c7ca56b9: tests/telemetry_golden.rs

tests/telemetry_golden.rs:
