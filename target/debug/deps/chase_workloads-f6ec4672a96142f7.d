/root/repo/target/debug/deps/chase_workloads-f6ec4672a96142f7.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/chase_workloads-f6ec4672a96142f7: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/suite.rs:
