/root/repo/target/debug/deps/relations-a9edb59abac433b2.d: crates/bench/benches/relations.rs Cargo.toml

/root/repo/target/debug/deps/librelations-a9edb59abac433b2.rmeta: crates/bench/benches/relations.rs Cargo.toml

crates/bench/benches/relations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
