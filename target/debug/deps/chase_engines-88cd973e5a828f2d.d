/root/repo/target/debug/deps/chase_engines-88cd973e5a828f2d.d: crates/bench/benches/chase_engines.rs Cargo.toml

/root/repo/target/debug/deps/libchase_engines-88cd973e5a828f2d.rmeta: crates/bench/benches/chase_engines.rs Cargo.toml

crates/bench/benches/chase_engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
