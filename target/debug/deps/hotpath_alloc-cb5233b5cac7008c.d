/root/repo/target/debug/deps/hotpath_alloc-cb5233b5cac7008c.d: crates/bench/tests/hotpath_alloc.rs

/root/repo/target/debug/deps/hotpath_alloc-cb5233b5cac7008c: crates/bench/tests/hotpath_alloc.rs

crates/bench/tests/hotpath_alloc.rs:
