/root/repo/target/debug/deps/paper_examples-f9c988aaf499dcaf.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-f9c988aaf499dcaf: tests/paper_examples.rs

tests/paper_examples.rs:
