/root/repo/target/debug/deps/chase_workloads-89b4d1ef6ab56c71.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/chase_workloads-89b4d1ef6ab56c71: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/suite.rs:
