/root/repo/target/debug/deps/chasectl-7da369918ceaff03.d: crates/cli/src/main.rs crates/cli/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libchasectl-7da369918ceaff03.rmeta: crates/cli/src/main.rs crates/cli/src/stats.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
