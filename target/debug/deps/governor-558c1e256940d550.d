/root/repo/target/debug/deps/governor-558c1e256940d550.d: crates/engine/tests/governor.rs Cargo.toml

/root/repo/target/debug/deps/libgovernor-558c1e256940d550.rmeta: crates/engine/tests/governor.rs Cargo.toml

crates/engine/tests/governor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
