/root/repo/target/debug/deps/decider_suite-1797abd94175d5ab.d: tests/decider_suite.rs Cargo.toml

/root/repo/target/debug/deps/libdecider_suite-1797abd94175d5ab.rmeta: tests/decider_suite.rs Cargo.toml

tests/decider_suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
