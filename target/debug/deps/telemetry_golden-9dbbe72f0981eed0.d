/root/repo/target/debug/deps/telemetry_golden-9dbbe72f0981eed0.d: tests/telemetry_golden.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_golden-9dbbe72f0981eed0.rmeta: tests/telemetry_golden.rs Cargo.toml

tests/telemetry_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
