/root/repo/target/debug/deps/engine_equivalence-6874ae78e632f8ec.d: tests/engine_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libengine_equivalence-6874ae78e632f8ec.rmeta: tests/engine_equivalence.rs Cargo.toml

tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
