/root/repo/target/debug/deps/decider_suite-bd8731f661827b9b.d: tests/decider_suite.rs

/root/repo/target/debug/deps/decider_suite-bd8731f661827b9b: tests/decider_suite.rs

tests/decider_suite.rs:
