/root/repo/target/debug/deps/restricted_chase-5fe9f8a2faf82b2b.d: src/lib.rs

/root/repo/target/debug/deps/restricted_chase-5fe9f8a2faf82b2b: src/lib.rs

src/lib.rs:
