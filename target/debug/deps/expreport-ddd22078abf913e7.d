/root/repo/target/debug/deps/expreport-ddd22078abf913e7.d: crates/bench/src/bin/expreport.rs Cargo.toml

/root/repo/target/debug/deps/libexpreport-ddd22078abf913e7.rmeta: crates/bench/src/bin/expreport.rs Cargo.toml

crates/bench/src/bin/expreport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
