/root/repo/target/debug/deps/hotpath-3f02dde5261dd33d.d: crates/bench/benches/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-3f02dde5261dd33d.rmeta: crates/bench/benches/hotpath.rs Cargo.toml

crates/bench/benches/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
