/root/repo/target/debug/deps/chase_telemetry-18f3042e76f9d4ce.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs Cargo.toml

/root/repo/target/debug/deps/libchase_telemetry-18f3042e76f9d4ce.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/observer.rs:
crates/telemetry/src/sinks.rs:
crates/telemetry/src/summary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
