/root/repo/target/debug/deps/proptest-e3ea5e96b01ef921.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-e3ea5e96b01ef921.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
