/root/repo/target/debug/deps/chase_properties-0f4e1c3017e32b05.d: tests/chase_properties.rs Cargo.toml

/root/repo/target/debug/deps/libchase_properties-0f4e1c3017e32b05.rmeta: tests/chase_properties.rs Cargo.toml

tests/chase_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
