/root/repo/target/debug/deps/hotpath-127ca2c0efe97e04.d: crates/bench/benches/hotpath.rs

/root/repo/target/debug/deps/hotpath-127ca2c0efe97e04: crates/bench/benches/hotpath.rs

crates/bench/benches/hotpath.rs:
