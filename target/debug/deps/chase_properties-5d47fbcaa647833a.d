/root/repo/target/debug/deps/chase_properties-5d47fbcaa647833a.d: tests/chase_properties.rs

/root/repo/target/debug/deps/chase_properties-5d47fbcaa647833a: tests/chase_properties.rs

tests/chase_properties.rs:
