/root/repo/target/debug/deps/expreport-c11634baa03cc365.d: crates/bench/src/bin/expreport.rs

/root/repo/target/debug/deps/expreport-c11634baa03cc365: crates/bench/src/bin/expreport.rs

crates/bench/src/bin/expreport.rs:
