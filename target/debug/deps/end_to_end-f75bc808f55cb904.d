/root/repo/target/debug/deps/end_to_end-f75bc808f55cb904.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-f75bc808f55cb904: tests/end_to_end.rs

tests/end_to_end.rs:
