/root/repo/target/debug/deps/chase_properties-13f2bea13862918d.d: tests/chase_properties.rs

/root/repo/target/debug/deps/chase_properties-13f2bea13862918d: tests/chase_properties.rs

tests/chase_properties.rs:
