/root/repo/target/debug/deps/decider_consistency-3cdde24419000e0e.d: tests/decider_consistency.rs

/root/repo/target/debug/deps/decider_consistency-3cdde24419000e0e: tests/decider_consistency.rs

tests/decider_consistency.rs:
