/root/repo/target/debug/deps/cli_golden-32ebb2284410721b.d: crates/cli/tests/cli_golden.rs

/root/repo/target/debug/deps/cli_golden-32ebb2284410721b: crates/cli/tests/cli_golden.rs

crates/cli/tests/cli_golden.rs:

# env-dep:CARGO_BIN_EXE_chasectl=/root/repo/target/debug/chasectl
