/root/repo/target/debug/deps/restricted_chase-9817770d1732db88.d: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-9817770d1732db88.rlib: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-9817770d1732db88.rmeta: src/lib.rs

src/lib.rs:
