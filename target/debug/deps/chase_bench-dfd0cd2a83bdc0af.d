/root/repo/target/debug/deps/chase_bench-dfd0cd2a83bdc0af.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libchase_bench-dfd0cd2a83bdc0af.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libchase_bench-dfd0cd2a83bdc0af.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
