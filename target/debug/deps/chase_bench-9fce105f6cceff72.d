/root/repo/target/debug/deps/chase_bench-9fce105f6cceff72.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libchase_bench-9fce105f6cceff72.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libchase_bench-9fce105f6cceff72.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
