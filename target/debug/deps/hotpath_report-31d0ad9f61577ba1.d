/root/repo/target/debug/deps/hotpath_report-31d0ad9f61577ba1.d: crates/bench/src/bin/hotpath_report.rs

/root/repo/target/debug/deps/hotpath_report-31d0ad9f61577ba1: crates/bench/src/bin/hotpath_report.rs

crates/bench/src/bin/hotpath_report.rs:
