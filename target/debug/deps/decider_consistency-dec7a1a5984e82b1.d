/root/repo/target/debug/deps/decider_consistency-dec7a1a5984e82b1.d: tests/decider_consistency.rs

/root/repo/target/debug/deps/decider_consistency-dec7a1a5984e82b1: tests/decider_consistency.rs

tests/decider_consistency.rs:
