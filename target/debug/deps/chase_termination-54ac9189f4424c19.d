/root/repo/target/debug/deps/chase_termination-54ac9189f4424c19.d: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs

/root/repo/target/debug/deps/chase_termination-54ac9189f4424c19: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs

crates/termination/src/lib.rs:
crates/termination/src/common.rs:
crates/termination/src/guarded/mod.rs:
crates/termination/src/guarded/ajt.rs:
crates/termination/src/guarded/ajt_chaseable.rs:
crates/termination/src/guarded/sideatom.rs:
crates/termination/src/guarded/treeify.rs:
crates/termination/src/linear.rs:
crates/termination/src/orders.rs:
crates/termination/src/partitions.rs:
crates/termination/src/report.rs:
crates/termination/src/sticky/mod.rs:
crates/termination/src/sticky/witness.rs:
