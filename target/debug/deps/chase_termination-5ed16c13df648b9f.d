/root/repo/target/debug/deps/chase_termination-5ed16c13df648b9f.d: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs Cargo.toml

/root/repo/target/debug/deps/libchase_termination-5ed16c13df648b9f.rmeta: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs Cargo.toml

crates/termination/src/lib.rs:
crates/termination/src/common.rs:
crates/termination/src/guarded/mod.rs:
crates/termination/src/guarded/ajt.rs:
crates/termination/src/guarded/ajt_chaseable.rs:
crates/termination/src/guarded/sideatom.rs:
crates/termination/src/guarded/treeify.rs:
crates/termination/src/linear.rs:
crates/termination/src/orders.rs:
crates/termination/src/partitions.rs:
crates/termination/src/report.rs:
crates/termination/src/sticky/mod.rs:
crates/termination/src/sticky/witness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
