/root/repo/target/debug/deps/chasectl-8e08ba0f9ce39412.d: crates/cli/src/main.rs crates/cli/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libchasectl-8e08ba0f9ce39412.rmeta: crates/cli/src/main.rs crates/cli/src/stats.rs Cargo.toml

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
