/root/repo/target/debug/deps/cli_golden-81305e293cf7c719.d: crates/cli/tests/cli_golden.rs

/root/repo/target/debug/deps/cli_golden-81305e293cf7c719: crates/cli/tests/cli_golden.rs

crates/cli/tests/cli_golden.rs:

# env-dep:CARGO_BIN_EXE_chasectl=/root/repo/target/debug/chasectl
