/root/repo/target/debug/deps/tgd_classes-aa0c3e77525076d0.d: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

/root/repo/target/debug/deps/tgd_classes-aa0c3e77525076d0: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

crates/classes/src/lib.rs:
crates/classes/src/baselines.rs:
crates/classes/src/guarded.rs:
crates/classes/src/jointly_acyclic.rs:
crates/classes/src/profile.rs:
crates/classes/src/sticky.rs:
crates/classes/src/weakly_acyclic.rs:
