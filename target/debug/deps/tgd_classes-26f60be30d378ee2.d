/root/repo/target/debug/deps/tgd_classes-26f60be30d378ee2.d: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs Cargo.toml

/root/repo/target/debug/deps/libtgd_classes-26f60be30d378ee2.rmeta: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs Cargo.toml

crates/classes/src/lib.rs:
crates/classes/src/baselines.rs:
crates/classes/src/guarded.rs:
crates/classes/src/jointly_acyclic.rs:
crates/classes/src/profile.rs:
crates/classes/src/sticky.rs:
crates/classes/src/weakly_acyclic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
