/root/repo/target/debug/deps/chase_workloads-22f3fc63a5843d19.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-22f3fc63a5843d19.rlib: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-22f3fc63a5843d19.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/suite.rs:
