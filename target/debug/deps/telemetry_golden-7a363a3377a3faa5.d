/root/repo/target/debug/deps/telemetry_golden-7a363a3377a3faa5.d: tests/telemetry_golden.rs

/root/repo/target/debug/deps/telemetry_golden-7a363a3377a3faa5: tests/telemetry_golden.rs

tests/telemetry_golden.rs:
