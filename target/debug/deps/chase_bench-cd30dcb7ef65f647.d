/root/repo/target/debug/deps/chase_bench-cd30dcb7ef65f647.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libchase_bench-cd30dcb7ef65f647.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
