/root/repo/target/debug/deps/chase_properties-38a90e27a1aa5e04.d: tests/chase_properties.rs

/root/repo/target/debug/deps/chase_properties-38a90e27a1aa5e04: tests/chase_properties.rs

tests/chase_properties.rs:
