/root/repo/target/debug/deps/chase_bench-37cbac726502856c.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/chase_bench-37cbac726502856c: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
