/root/repo/target/debug/deps/tgd_classes-ef4677e244da681c.d: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

/root/repo/target/debug/deps/libtgd_classes-ef4677e244da681c.rlib: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

/root/repo/target/debug/deps/libtgd_classes-ef4677e244da681c.rmeta: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

crates/classes/src/lib.rs:
crates/classes/src/baselines.rs:
crates/classes/src/guarded.rs:
crates/classes/src/jointly_acyclic.rs:
crates/classes/src/profile.rs:
crates/classes/src/sticky.rs:
crates/classes/src/weakly_acyclic.rs:
