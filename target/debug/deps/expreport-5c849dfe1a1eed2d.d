/root/repo/target/debug/deps/expreport-5c849dfe1a1eed2d.d: crates/bench/src/bin/expreport.rs

/root/repo/target/debug/deps/expreport-5c849dfe1a1eed2d: crates/bench/src/bin/expreport.rs

crates/bench/src/bin/expreport.rs:
