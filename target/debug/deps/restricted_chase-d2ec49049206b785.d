/root/repo/target/debug/deps/restricted_chase-d2ec49049206b785.d: src/lib.rs

/root/repo/target/debug/deps/restricted_chase-d2ec49049206b785: src/lib.rs

src/lib.rs:
