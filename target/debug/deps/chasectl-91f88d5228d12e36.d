/root/repo/target/debug/deps/chasectl-91f88d5228d12e36.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/debug/deps/chasectl-91f88d5228d12e36: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
