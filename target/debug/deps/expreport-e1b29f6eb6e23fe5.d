/root/repo/target/debug/deps/expreport-e1b29f6eb6e23fe5.d: crates/bench/src/bin/expreport.rs

/root/repo/target/debug/deps/expreport-e1b29f6eb6e23fe5: crates/bench/src/bin/expreport.rs

crates/bench/src/bin/expreport.rs:
