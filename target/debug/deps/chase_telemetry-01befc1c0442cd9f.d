/root/repo/target/debug/deps/chase_telemetry-01befc1c0442cd9f.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

/root/repo/target/debug/deps/chase_telemetry-01befc1c0442cd9f: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/observer.rs:
crates/telemetry/src/sinks.rs:
crates/telemetry/src/summary.rs:
