/root/repo/target/debug/deps/universal_model-f123d825660717a9.d: tests/universal_model.rs

/root/repo/target/debug/deps/universal_model-f123d825660717a9: tests/universal_model.rs

tests/universal_model.rs:
