/root/repo/target/debug/deps/hotpath_report-28d6f6fce27df13b.d: crates/bench/src/bin/hotpath_report.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath_report-28d6f6fce27df13b.rmeta: crates/bench/src/bin/hotpath_report.rs Cargo.toml

crates/bench/src/bin/hotpath_report.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
