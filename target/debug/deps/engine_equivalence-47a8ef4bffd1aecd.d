/root/repo/target/debug/deps/engine_equivalence-47a8ef4bffd1aecd.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-47a8ef4bffd1aecd: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
