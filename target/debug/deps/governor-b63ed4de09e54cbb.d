/root/repo/target/debug/deps/governor-b63ed4de09e54cbb.d: crates/engine/tests/governor.rs

/root/repo/target/debug/deps/governor-b63ed4de09e54cbb: crates/engine/tests/governor.rs

crates/engine/tests/governor.rs:
