/root/repo/target/debug/deps/chase_bench-f381d62eb1e011a6.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/chase_bench-f381d62eb1e011a6: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
