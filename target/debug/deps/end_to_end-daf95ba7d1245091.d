/root/repo/target/debug/deps/end_to_end-daf95ba7d1245091.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-daf95ba7d1245091: tests/end_to_end.rs

tests/end_to_end.rs:
