/root/repo/target/debug/deps/hotpath_report-abe2697c6be3bedc.d: crates/bench/src/bin/hotpath_report.rs

/root/repo/target/debug/deps/hotpath_report-abe2697c6be3bedc: crates/bench/src/bin/hotpath_report.rs

crates/bench/src/bin/hotpath_report.rs:
