/root/repo/target/debug/deps/chasectl-31fc868b1816f009.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/debug/deps/chasectl-31fc868b1816f009: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
