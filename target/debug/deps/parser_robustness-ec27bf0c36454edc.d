/root/repo/target/debug/deps/parser_robustness-ec27bf0c36454edc.d: tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-ec27bf0c36454edc: tests/parser_robustness.rs

tests/parser_robustness.rs:
