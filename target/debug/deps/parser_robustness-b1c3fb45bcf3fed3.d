/root/repo/target/debug/deps/parser_robustness-b1c3fb45bcf3fed3.d: tests/parser_robustness.rs Cargo.toml

/root/repo/target/debug/deps/libparser_robustness-b1c3fb45bcf3fed3.rmeta: tests/parser_robustness.rs Cargo.toml

tests/parser_robustness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
