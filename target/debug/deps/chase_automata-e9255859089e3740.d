/root/repo/target/debug/deps/chase_automata-e9255859089e3740.d: crates/automata/src/lib.rs crates/automata/src/buchi.rs

/root/repo/target/debug/deps/chase_automata-e9255859089e3740: crates/automata/src/lib.rs crates/automata/src/buchi.rs

crates/automata/src/lib.rs:
crates/automata/src/buchi.rs:
