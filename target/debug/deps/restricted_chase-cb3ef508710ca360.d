/root/repo/target/debug/deps/restricted_chase-cb3ef508710ca360.d: src/lib.rs

/root/repo/target/debug/deps/restricted_chase-cb3ef508710ca360: src/lib.rs

src/lib.rs:
