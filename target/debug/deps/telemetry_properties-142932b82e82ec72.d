/root/repo/target/debug/deps/telemetry_properties-142932b82e82ec72.d: tests/telemetry_properties.rs

/root/repo/target/debug/deps/telemetry_properties-142932b82e82ec72: tests/telemetry_properties.rs

tests/telemetry_properties.rs:
