/root/repo/target/debug/deps/decider_consistency-edfcc0bebdecb757.d: tests/decider_consistency.rs

/root/repo/target/debug/deps/decider_consistency-edfcc0bebdecb757: tests/decider_consistency.rs

tests/decider_consistency.rs:
