/root/repo/target/debug/deps/parser_robustness-64d37d1ed41d7a0a.d: tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-64d37d1ed41d7a0a: tests/parser_robustness.rs

tests/parser_robustness.rs:
