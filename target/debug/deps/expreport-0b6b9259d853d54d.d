/root/repo/target/debug/deps/expreport-0b6b9259d853d54d.d: crates/bench/src/bin/expreport.rs Cargo.toml

/root/repo/target/debug/deps/libexpreport-0b6b9259d853d54d.rmeta: crates/bench/src/bin/expreport.rs Cargo.toml

crates/bench/src/bin/expreport.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
