/root/repo/target/debug/deps/chase_workloads-b6e633425e8dc30e.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-b6e633425e8dc30e.rlib: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-b6e633425e8dc30e.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/suite.rs:
