/root/repo/target/debug/deps/faults-bde8309452895399.d: crates/engine/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-bde8309452895399.rmeta: crates/engine/tests/faults.rs Cargo.toml

crates/engine/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
