/root/repo/target/debug/deps/chase_workloads-8941d801fdc19c84.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libchase_workloads-8941d801fdc19c84.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
