/root/repo/target/debug/deps/restricted_chase-d5eb46d34db2642a.d: src/lib.rs

/root/repo/target/debug/deps/restricted_chase-d5eb46d34db2642a: src/lib.rs

src/lib.rs:
