/root/repo/target/debug/deps/restricted_chase-424a53af32f33031.d: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-424a53af32f33031.rlib: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-424a53af32f33031.rmeta: src/lib.rs

src/lib.rs:
