/root/repo/target/debug/deps/restricted_chase-a4a208dbbaee9344.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librestricted_chase-a4a208dbbaee9344.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
