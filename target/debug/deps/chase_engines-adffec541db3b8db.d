/root/repo/target/debug/deps/chase_engines-adffec541db3b8db.d: crates/bench/benches/chase_engines.rs

/root/repo/target/debug/deps/chase_engines-adffec541db3b8db: crates/bench/benches/chase_engines.rs

crates/bench/benches/chase_engines.rs:
