/root/repo/target/debug/deps/telemetry_properties-cc0b2a2a62cb9ca9.d: tests/telemetry_properties.rs

/root/repo/target/debug/deps/telemetry_properties-cc0b2a2a62cb9ca9: tests/telemetry_properties.rs

tests/telemetry_properties.rs:
