/root/repo/target/debug/deps/chase_bench-0367d8ad0aabbb5f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/chase_bench-0367d8ad0aabbb5f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
