/root/repo/target/debug/deps/restricted_chase-aeaec7db3e7e0720.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librestricted_chase-aeaec7db3e7e0720.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
