/root/repo/target/debug/deps/restricted_chase-843315d3945dfcc1.d: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-843315d3945dfcc1.rlib: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-843315d3945dfcc1.rmeta: src/lib.rs

src/lib.rs:
