/root/repo/target/debug/deps/decider_consistency-c322ec7bb5842593.d: tests/decider_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libdecider_consistency-c322ec7bb5842593.rmeta: tests/decider_consistency.rs Cargo.toml

tests/decider_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
