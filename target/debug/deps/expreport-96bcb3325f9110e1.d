/root/repo/target/debug/deps/expreport-96bcb3325f9110e1.d: crates/bench/src/bin/expreport.rs

/root/repo/target/debug/deps/expreport-96bcb3325f9110e1: crates/bench/src/bin/expreport.rs

crates/bench/src/bin/expreport.rs:
