/root/repo/target/debug/deps/chase_bench-9493982430e35e3b.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libchase_bench-9493982430e35e3b.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
