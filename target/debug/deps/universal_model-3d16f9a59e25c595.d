/root/repo/target/debug/deps/universal_model-3d16f9a59e25c595.d: tests/universal_model.rs

/root/repo/target/debug/deps/universal_model-3d16f9a59e25c595: tests/universal_model.rs

tests/universal_model.rs:
