/root/repo/target/debug/deps/hotpath_report-685933f477618ada.d: crates/bench/src/bin/hotpath_report.rs

/root/repo/target/debug/deps/hotpath_report-685933f477618ada: crates/bench/src/bin/hotpath_report.rs

crates/bench/src/bin/hotpath_report.rs:
