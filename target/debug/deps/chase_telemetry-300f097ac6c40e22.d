/root/repo/target/debug/deps/chase_telemetry-300f097ac6c40e22.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

/root/repo/target/debug/deps/libchase_telemetry-300f097ac6c40e22.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

/root/repo/target/debug/deps/libchase_telemetry-300f097ac6c40e22.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/observer.rs:
crates/telemetry/src/sinks.rs:
crates/telemetry/src/summary.rs:
