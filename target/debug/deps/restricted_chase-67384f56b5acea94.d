/root/repo/target/debug/deps/restricted_chase-67384f56b5acea94.d: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-67384f56b5acea94.rlib: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-67384f56b5acea94.rmeta: src/lib.rs

src/lib.rs:
