/root/repo/target/debug/deps/proptest-1b7d78cf2cbcfe7f.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-1b7d78cf2cbcfe7f: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
