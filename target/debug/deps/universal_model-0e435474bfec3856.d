/root/repo/target/debug/deps/universal_model-0e435474bfec3856.d: tests/universal_model.rs Cargo.toml

/root/repo/target/debug/deps/libuniversal_model-0e435474bfec3856.rmeta: tests/universal_model.rs Cargo.toml

tests/universal_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
