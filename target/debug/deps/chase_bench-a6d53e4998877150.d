/root/repo/target/debug/deps/chase_bench-a6d53e4998877150.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libchase_bench-a6d53e4998877150.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libchase_bench-a6d53e4998877150.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
