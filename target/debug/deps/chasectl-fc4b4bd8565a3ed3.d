/root/repo/target/debug/deps/chasectl-fc4b4bd8565a3ed3.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/debug/deps/chasectl-fc4b4bd8565a3ed3: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
