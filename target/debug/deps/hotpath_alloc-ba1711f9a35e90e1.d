/root/repo/target/debug/deps/hotpath_alloc-ba1711f9a35e90e1.d: crates/bench/tests/hotpath_alloc.rs

/root/repo/target/debug/deps/hotpath_alloc-ba1711f9a35e90e1: crates/bench/tests/hotpath_alloc.rs

crates/bench/tests/hotpath_alloc.rs:
