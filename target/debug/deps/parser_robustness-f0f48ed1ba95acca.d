/root/repo/target/debug/deps/parser_robustness-f0f48ed1ba95acca.d: tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-f0f48ed1ba95acca: tests/parser_robustness.rs

tests/parser_robustness.rs:
