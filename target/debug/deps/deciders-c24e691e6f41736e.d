/root/repo/target/debug/deps/deciders-c24e691e6f41736e.d: crates/bench/benches/deciders.rs

/root/repo/target/debug/deps/deciders-c24e691e6f41736e: crates/bench/benches/deciders.rs

crates/bench/benches/deciders.rs:
