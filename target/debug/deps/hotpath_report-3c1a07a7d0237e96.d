/root/repo/target/debug/deps/hotpath_report-3c1a07a7d0237e96.d: crates/bench/src/bin/hotpath_report.rs

/root/repo/target/debug/deps/hotpath_report-3c1a07a7d0237e96: crates/bench/src/bin/hotpath_report.rs

crates/bench/src/bin/hotpath_report.rs:
