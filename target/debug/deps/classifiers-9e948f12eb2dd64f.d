/root/repo/target/debug/deps/classifiers-9e948f12eb2dd64f.d: crates/bench/benches/classifiers.rs

/root/repo/target/debug/deps/classifiers-9e948f12eb2dd64f: crates/bench/benches/classifiers.rs

crates/bench/benches/classifiers.rs:
