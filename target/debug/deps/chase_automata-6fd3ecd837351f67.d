/root/repo/target/debug/deps/chase_automata-6fd3ecd837351f67.d: crates/automata/src/lib.rs crates/automata/src/buchi.rs

/root/repo/target/debug/deps/libchase_automata-6fd3ecd837351f67.rlib: crates/automata/src/lib.rs crates/automata/src/buchi.rs

/root/repo/target/debug/deps/libchase_automata-6fd3ecd837351f67.rmeta: crates/automata/src/lib.rs crates/automata/src/buchi.rs

crates/automata/src/lib.rs:
crates/automata/src/buchi.rs:
