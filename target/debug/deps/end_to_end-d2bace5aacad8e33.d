/root/repo/target/debug/deps/end_to_end-d2bace5aacad8e33.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d2bace5aacad8e33: tests/end_to_end.rs

tests/end_to_end.rs:
