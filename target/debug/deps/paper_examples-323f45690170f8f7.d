/root/repo/target/debug/deps/paper_examples-323f45690170f8f7.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-323f45690170f8f7: tests/paper_examples.rs

tests/paper_examples.rs:
