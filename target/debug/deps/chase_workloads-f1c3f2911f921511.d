/root/repo/target/debug/deps/chase_workloads-f1c3f2911f921511.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-f1c3f2911f921511.rlib: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libchase_workloads-f1c3f2911f921511.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/suite.rs:
