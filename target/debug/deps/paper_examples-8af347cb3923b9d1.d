/root/repo/target/debug/deps/paper_examples-8af347cb3923b9d1.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-8af347cb3923b9d1: tests/paper_examples.rs

tests/paper_examples.rs:
