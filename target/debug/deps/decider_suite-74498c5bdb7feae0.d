/root/repo/target/debug/deps/decider_suite-74498c5bdb7feae0.d: tests/decider_suite.rs

/root/repo/target/debug/deps/decider_suite-74498c5bdb7feae0: tests/decider_suite.rs

tests/decider_suite.rs:
