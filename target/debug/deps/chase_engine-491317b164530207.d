/root/repo/target/debug/deps/chase_engine-491317b164530207.d: crates/engine/src/lib.rs crates/engine/src/chaseable.rs crates/engine/src/critical.rs crates/engine/src/derivation.rs crates/engine/src/dot.rs crates/engine/src/driver.rs crates/engine/src/fairness.rs crates/engine/src/faults.rs crates/engine/src/governor.rs crates/engine/src/oblivious.rs crates/engine/src/query.rs crates/engine/src/real_oblivious.rs crates/engine/src/relations.rs crates/engine/src/restricted.rs crates/engine/src/seed.rs crates/engine/src/skolem.rs crates/engine/src/trigger.rs crates/engine/src/universal.rs

/root/repo/target/debug/deps/libchase_engine-491317b164530207.rlib: crates/engine/src/lib.rs crates/engine/src/chaseable.rs crates/engine/src/critical.rs crates/engine/src/derivation.rs crates/engine/src/dot.rs crates/engine/src/driver.rs crates/engine/src/fairness.rs crates/engine/src/faults.rs crates/engine/src/governor.rs crates/engine/src/oblivious.rs crates/engine/src/query.rs crates/engine/src/real_oblivious.rs crates/engine/src/relations.rs crates/engine/src/restricted.rs crates/engine/src/seed.rs crates/engine/src/skolem.rs crates/engine/src/trigger.rs crates/engine/src/universal.rs

/root/repo/target/debug/deps/libchase_engine-491317b164530207.rmeta: crates/engine/src/lib.rs crates/engine/src/chaseable.rs crates/engine/src/critical.rs crates/engine/src/derivation.rs crates/engine/src/dot.rs crates/engine/src/driver.rs crates/engine/src/fairness.rs crates/engine/src/faults.rs crates/engine/src/governor.rs crates/engine/src/oblivious.rs crates/engine/src/query.rs crates/engine/src/real_oblivious.rs crates/engine/src/relations.rs crates/engine/src/restricted.rs crates/engine/src/seed.rs crates/engine/src/skolem.rs crates/engine/src/trigger.rs crates/engine/src/universal.rs

crates/engine/src/lib.rs:
crates/engine/src/chaseable.rs:
crates/engine/src/critical.rs:
crates/engine/src/derivation.rs:
crates/engine/src/dot.rs:
crates/engine/src/driver.rs:
crates/engine/src/fairness.rs:
crates/engine/src/faults.rs:
crates/engine/src/governor.rs:
crates/engine/src/oblivious.rs:
crates/engine/src/query.rs:
crates/engine/src/real_oblivious.rs:
crates/engine/src/relations.rs:
crates/engine/src/restricted.rs:
crates/engine/src/seed.rs:
crates/engine/src/skolem.rs:
crates/engine/src/trigger.rs:
crates/engine/src/universal.rs:
