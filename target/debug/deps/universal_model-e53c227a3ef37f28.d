/root/repo/target/debug/deps/universal_model-e53c227a3ef37f28.d: tests/universal_model.rs

/root/repo/target/debug/deps/universal_model-e53c227a3ef37f28: tests/universal_model.rs

tests/universal_model.rs:
