/root/repo/target/debug/deps/hotpath_alloc-a63febcc0c516bfc.d: crates/bench/tests/hotpath_alloc.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath_alloc-a63febcc0c516bfc.rmeta: crates/bench/tests/hotpath_alloc.rs Cargo.toml

crates/bench/tests/hotpath_alloc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
