/root/repo/target/debug/deps/engine_equivalence-c3d3064cbcb4c617.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-c3d3064cbcb4c617: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
