/root/repo/target/debug/deps/parser_robustness-bae039e5f6b98e60.d: tests/parser_robustness.rs

/root/repo/target/debug/deps/parser_robustness-bae039e5f6b98e60: tests/parser_robustness.rs

tests/parser_robustness.rs:
