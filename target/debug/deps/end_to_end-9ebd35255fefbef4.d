/root/repo/target/debug/deps/end_to_end-9ebd35255fefbef4.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9ebd35255fefbef4: tests/end_to_end.rs

tests/end_to_end.rs:
