/root/repo/target/debug/deps/restricted_chase-6071d87f3bbe7972.d: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-6071d87f3bbe7972.rlib: src/lib.rs

/root/repo/target/debug/deps/librestricted_chase-6071d87f3bbe7972.rmeta: src/lib.rs

src/lib.rs:
