/root/repo/target/debug/deps/classifiers-9a1428153f09673d.d: crates/bench/benches/classifiers.rs Cargo.toml

/root/repo/target/debug/deps/libclassifiers-9a1428153f09673d.rmeta: crates/bench/benches/classifiers.rs Cargo.toml

crates/bench/benches/classifiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
