/root/repo/target/debug/deps/deciders-64e5033ca7d27d8e.d: crates/bench/benches/deciders.rs Cargo.toml

/root/repo/target/debug/deps/libdeciders-64e5033ca7d27d8e.rmeta: crates/bench/benches/deciders.rs Cargo.toml

crates/bench/benches/deciders.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
