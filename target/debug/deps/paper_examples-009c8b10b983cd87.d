/root/repo/target/debug/deps/paper_examples-009c8b10b983cd87.d: tests/paper_examples.rs

/root/repo/target/debug/deps/paper_examples-009c8b10b983cd87: tests/paper_examples.rs

tests/paper_examples.rs:
