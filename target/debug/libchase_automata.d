/root/repo/target/debug/libchase_automata.rlib: /root/repo/crates/automata/src/buchi.rs /root/repo/crates/automata/src/lib.rs
