/root/repo/target/debug/examples/termination_portfolio-cb1b1e788e296651.d: examples/termination_portfolio.rs Cargo.toml

/root/repo/target/debug/examples/libtermination_portfolio-cb1b1e788e296651.rmeta: examples/termination_portfolio.rs Cargo.toml

examples/termination_portfolio.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
