/root/repo/target/debug/examples/fairness_demo-23461c36c6265692.d: examples/fairness_demo.rs

/root/repo/target/debug/examples/fairness_demo-23461c36c6265692: examples/fairness_demo.rs

examples/fairness_demo.rs:
