/root/repo/target/debug/examples/termination_portfolio-d47caf4700a54e3d.d: examples/termination_portfolio.rs

/root/repo/target/debug/examples/termination_portfolio-d47caf4700a54e3d: examples/termination_portfolio.rs

examples/termination_portfolio.rs:
