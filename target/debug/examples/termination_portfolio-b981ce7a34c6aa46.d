/root/repo/target/debug/examples/termination_portfolio-b981ce7a34c6aa46.d: examples/termination_portfolio.rs

/root/repo/target/debug/examples/termination_portfolio-b981ce7a34c6aa46: examples/termination_portfolio.rs

examples/termination_portfolio.rs:
