/root/repo/target/debug/examples/fairness_demo-bc6741abccb92748.d: examples/fairness_demo.rs

/root/repo/target/debug/examples/fairness_demo-bc6741abccb92748: examples/fairness_demo.rs

examples/fairness_demo.rs:
