/root/repo/target/debug/examples/ontology_reasoning-3ec2d72bea54b575.d: examples/ontology_reasoning.rs

/root/repo/target/debug/examples/ontology_reasoning-3ec2d72bea54b575: examples/ontology_reasoning.rs

examples/ontology_reasoning.rs:
