/root/repo/target/debug/examples/data_exchange-d7b903d9421ec48e.d: examples/data_exchange.rs

/root/repo/target/debug/examples/data_exchange-d7b903d9421ec48e: examples/data_exchange.rs

examples/data_exchange.rs:
