/root/repo/target/debug/examples/ontology_reasoning-57db925bc61b5236.d: examples/ontology_reasoning.rs

/root/repo/target/debug/examples/ontology_reasoning-57db925bc61b5236: examples/ontology_reasoning.rs

examples/ontology_reasoning.rs:
