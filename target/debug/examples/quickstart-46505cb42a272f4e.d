/root/repo/target/debug/examples/quickstart-46505cb42a272f4e.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-46505cb42a272f4e: examples/quickstart.rs

examples/quickstart.rs:
