/root/repo/target/debug/examples/termination_portfolio-fb2642dd4bad4ada.d: examples/termination_portfolio.rs

/root/repo/target/debug/examples/termination_portfolio-fb2642dd4bad4ada: examples/termination_portfolio.rs

examples/termination_portfolio.rs:
