/root/repo/target/debug/examples/ontology_reasoning-ba4c4de7105b7172.d: examples/ontology_reasoning.rs

/root/repo/target/debug/examples/ontology_reasoning-ba4c4de7105b7172: examples/ontology_reasoning.rs

examples/ontology_reasoning.rs:
