/root/repo/target/debug/examples/ontology_reasoning-fba280a27acb234e.d: examples/ontology_reasoning.rs

/root/repo/target/debug/examples/ontology_reasoning-fba280a27acb234e: examples/ontology_reasoning.rs

examples/ontology_reasoning.rs:
