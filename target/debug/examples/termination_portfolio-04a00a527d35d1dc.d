/root/repo/target/debug/examples/termination_portfolio-04a00a527d35d1dc.d: examples/termination_portfolio.rs

/root/repo/target/debug/examples/termination_portfolio-04a00a527d35d1dc: examples/termination_portfolio.rs

examples/termination_portfolio.rs:
