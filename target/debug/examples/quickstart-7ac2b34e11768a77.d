/root/repo/target/debug/examples/quickstart-7ac2b34e11768a77.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7ac2b34e11768a77: examples/quickstart.rs

examples/quickstart.rs:
