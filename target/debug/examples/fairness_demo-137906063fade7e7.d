/root/repo/target/debug/examples/fairness_demo-137906063fade7e7.d: examples/fairness_demo.rs Cargo.toml

/root/repo/target/debug/examples/libfairness_demo-137906063fade7e7.rmeta: examples/fairness_demo.rs Cargo.toml

examples/fairness_demo.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
