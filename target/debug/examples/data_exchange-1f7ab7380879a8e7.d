/root/repo/target/debug/examples/data_exchange-1f7ab7380879a8e7.d: examples/data_exchange.rs

/root/repo/target/debug/examples/data_exchange-1f7ab7380879a8e7: examples/data_exchange.rs

examples/data_exchange.rs:
