/root/repo/target/debug/examples/data_exchange-f58f50ef99f673ae.d: examples/data_exchange.rs Cargo.toml

/root/repo/target/debug/examples/libdata_exchange-f58f50ef99f673ae.rmeta: examples/data_exchange.rs Cargo.toml

examples/data_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
