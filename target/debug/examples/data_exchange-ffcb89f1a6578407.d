/root/repo/target/debug/examples/data_exchange-ffcb89f1a6578407.d: examples/data_exchange.rs

/root/repo/target/debug/examples/data_exchange-ffcb89f1a6578407: examples/data_exchange.rs

examples/data_exchange.rs:
