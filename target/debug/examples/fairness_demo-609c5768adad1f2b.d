/root/repo/target/debug/examples/fairness_demo-609c5768adad1f2b.d: examples/fairness_demo.rs

/root/repo/target/debug/examples/fairness_demo-609c5768adad1f2b: examples/fairness_demo.rs

examples/fairness_demo.rs:
