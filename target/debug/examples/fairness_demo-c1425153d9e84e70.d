/root/repo/target/debug/examples/fairness_demo-c1425153d9e84e70.d: examples/fairness_demo.rs

/root/repo/target/debug/examples/fairness_demo-c1425153d9e84e70: examples/fairness_demo.rs

examples/fairness_demo.rs:
