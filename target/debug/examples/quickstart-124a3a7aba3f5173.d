/root/repo/target/debug/examples/quickstart-124a3a7aba3f5173.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-124a3a7aba3f5173: examples/quickstart.rs

examples/quickstart.rs:
