/root/repo/target/debug/examples/quickstart-3b400157eff3fc8b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3b400157eff3fc8b: examples/quickstart.rs

examples/quickstart.rs:
