/root/repo/target/debug/examples/ontology_reasoning-f6cd402f950dc843.d: examples/ontology_reasoning.rs Cargo.toml

/root/repo/target/debug/examples/libontology_reasoning-f6cd402f950dc843.rmeta: examples/ontology_reasoning.rs Cargo.toml

examples/ontology_reasoning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
