/root/repo/target/debug/examples/data_exchange-d707729234c56fa3.d: examples/data_exchange.rs

/root/repo/target/debug/examples/data_exchange-d707729234c56fa3: examples/data_exchange.rs

examples/data_exchange.rs:
