/root/repo/target/release/deps/chase_automata-ed664dd6d594ff90.d: crates/automata/src/lib.rs crates/automata/src/buchi.rs

/root/repo/target/release/deps/libchase_automata-ed664dd6d594ff90.rlib: crates/automata/src/lib.rs crates/automata/src/buchi.rs

/root/repo/target/release/deps/libchase_automata-ed664dd6d594ff90.rmeta: crates/automata/src/lib.rs crates/automata/src/buchi.rs

crates/automata/src/lib.rs:
crates/automata/src/buchi.rs:
