/root/repo/target/release/deps/chase_telemetry-b16f8d81f5c8338a.d: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

/root/repo/target/release/deps/libchase_telemetry-b16f8d81f5c8338a.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

/root/repo/target/release/deps/libchase_telemetry-b16f8d81f5c8338a.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/counters.rs crates/telemetry/src/event.rs crates/telemetry/src/observer.rs crates/telemetry/src/sinks.rs crates/telemetry/src/summary.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/counters.rs:
crates/telemetry/src/event.rs:
crates/telemetry/src/observer.rs:
crates/telemetry/src/sinks.rs:
crates/telemetry/src/summary.rs:
