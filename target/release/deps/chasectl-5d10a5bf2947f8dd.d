/root/repo/target/release/deps/chasectl-5d10a5bf2947f8dd.d: crates/cli/src/main.rs crates/cli/src/stats.rs

/root/repo/target/release/deps/chasectl-5d10a5bf2947f8dd: crates/cli/src/main.rs crates/cli/src/stats.rs

crates/cli/src/main.rs:
crates/cli/src/stats.rs:
