/root/repo/target/release/deps/restricted_chase-335deab80a968411.d: src/lib.rs

/root/repo/target/release/deps/librestricted_chase-335deab80a968411.rlib: src/lib.rs

/root/repo/target/release/deps/librestricted_chase-335deab80a968411.rmeta: src/lib.rs

src/lib.rs:
