/root/repo/target/release/deps/rand-31ce63b66bb487b4.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-31ce63b66bb487b4.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-31ce63b66bb487b4.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
