/root/repo/target/release/deps/chase_core-d2b72b1302eb7331.d: crates/core/src/lib.rs crates/core/src/atom.rs crates/core/src/cancel.rs crates/core/src/eqtype.rs crates/core/src/error.rs crates/core/src/hom.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/parser.rs crates/core/src/subst.rs crates/core/src/term.rs crates/core/src/tgd.rs crates/core/src/vocab.rs

/root/repo/target/release/deps/libchase_core-d2b72b1302eb7331.rlib: crates/core/src/lib.rs crates/core/src/atom.rs crates/core/src/cancel.rs crates/core/src/eqtype.rs crates/core/src/error.rs crates/core/src/hom.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/parser.rs crates/core/src/subst.rs crates/core/src/term.rs crates/core/src/tgd.rs crates/core/src/vocab.rs

/root/repo/target/release/deps/libchase_core-d2b72b1302eb7331.rmeta: crates/core/src/lib.rs crates/core/src/atom.rs crates/core/src/cancel.rs crates/core/src/eqtype.rs crates/core/src/error.rs crates/core/src/hom.rs crates/core/src/ids.rs crates/core/src/instance.rs crates/core/src/parser.rs crates/core/src/subst.rs crates/core/src/term.rs crates/core/src/tgd.rs crates/core/src/vocab.rs

crates/core/src/lib.rs:
crates/core/src/atom.rs:
crates/core/src/cancel.rs:
crates/core/src/eqtype.rs:
crates/core/src/error.rs:
crates/core/src/hom.rs:
crates/core/src/ids.rs:
crates/core/src/instance.rs:
crates/core/src/parser.rs:
crates/core/src/subst.rs:
crates/core/src/term.rs:
crates/core/src/tgd.rs:
crates/core/src/vocab.rs:
