/root/repo/target/release/deps/chase_bench-a2db455edff8e000.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libchase_bench-a2db455edff8e000.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libchase_bench-a2db455edff8e000.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
