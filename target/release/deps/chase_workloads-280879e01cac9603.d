/root/repo/target/release/deps/chase_workloads-280879e01cac9603.d: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libchase_workloads-280879e01cac9603.rlib: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libchase_workloads-280879e01cac9603.rmeta: crates/workloads/src/lib.rs crates/workloads/src/families.rs crates/workloads/src/random.rs crates/workloads/src/runner.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/families.rs:
crates/workloads/src/random.rs:
crates/workloads/src/runner.rs:
crates/workloads/src/suite.rs:
