/root/repo/target/release/deps/criterion-a7c4da89d41b6168.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a7c4da89d41b6168.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-a7c4da89d41b6168.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
