/root/repo/target/release/deps/hotpath_report-a7996ebbda0237b2.d: crates/bench/src/bin/hotpath_report.rs

/root/repo/target/release/deps/hotpath_report-a7996ebbda0237b2: crates/bench/src/bin/hotpath_report.rs

crates/bench/src/bin/hotpath_report.rs:
