/root/repo/target/release/deps/chase_termination-6efa48db2afde9b8.d: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs

/root/repo/target/release/deps/libchase_termination-6efa48db2afde9b8.rlib: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs

/root/repo/target/release/deps/libchase_termination-6efa48db2afde9b8.rmeta: crates/termination/src/lib.rs crates/termination/src/common.rs crates/termination/src/guarded/mod.rs crates/termination/src/guarded/ajt.rs crates/termination/src/guarded/ajt_chaseable.rs crates/termination/src/guarded/sideatom.rs crates/termination/src/guarded/treeify.rs crates/termination/src/linear.rs crates/termination/src/orders.rs crates/termination/src/partitions.rs crates/termination/src/report.rs crates/termination/src/sticky/mod.rs crates/termination/src/sticky/witness.rs

crates/termination/src/lib.rs:
crates/termination/src/common.rs:
crates/termination/src/guarded/mod.rs:
crates/termination/src/guarded/ajt.rs:
crates/termination/src/guarded/ajt_chaseable.rs:
crates/termination/src/guarded/sideatom.rs:
crates/termination/src/guarded/treeify.rs:
crates/termination/src/linear.rs:
crates/termination/src/orders.rs:
crates/termination/src/partitions.rs:
crates/termination/src/report.rs:
crates/termination/src/sticky/mod.rs:
crates/termination/src/sticky/witness.rs:
