/root/repo/target/release/deps/chase_engines-e6484520c42d9213.d: crates/bench/benches/chase_engines.rs

/root/repo/target/release/deps/chase_engines-e6484520c42d9213: crates/bench/benches/chase_engines.rs

crates/bench/benches/chase_engines.rs:
