/root/repo/target/release/deps/hotpath-ca2cc7efddc0b2f3.d: crates/bench/benches/hotpath.rs

/root/repo/target/release/deps/hotpath-ca2cc7efddc0b2f3: crates/bench/benches/hotpath.rs

crates/bench/benches/hotpath.rs:
