/root/repo/target/release/deps/expreport-c967e30b19d4082a.d: crates/bench/src/bin/expreport.rs

/root/repo/target/release/deps/expreport-c967e30b19d4082a: crates/bench/src/bin/expreport.rs

crates/bench/src/bin/expreport.rs:
