/root/repo/target/release/deps/tgd_classes-78029a606ad09e82.d: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

/root/repo/target/release/deps/libtgd_classes-78029a606ad09e82.rlib: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

/root/repo/target/release/deps/libtgd_classes-78029a606ad09e82.rmeta: crates/classes/src/lib.rs crates/classes/src/baselines.rs crates/classes/src/guarded.rs crates/classes/src/jointly_acyclic.rs crates/classes/src/profile.rs crates/classes/src/sticky.rs crates/classes/src/weakly_acyclic.rs

crates/classes/src/lib.rs:
crates/classes/src/baselines.rs:
crates/classes/src/guarded.rs:
crates/classes/src/jointly_acyclic.rs:
crates/classes/src/profile.rs:
crates/classes/src/sticky.rs:
crates/classes/src/weakly_acyclic.rs:
