//! Data exchange with a weakly-acyclic source-to-target mapping
//! (the setting of Fagin, Kolaitis, Miller & Popa that motivates the
//! chase in the paper's introduction): compute a universal solution
//! with the restricted chase and evaluate certain answers.
//!
//! Run with `cargo run --example data_exchange`.

use restricted_chase::prelude::*;
use std::ops::ControlFlow;

fn main() {
    // Source schema: Emp(name, dept), Proj(dept, project).
    // Target schema: Works(name, project), Mgr(dept, manager),
    //                Reports(name, manager).
    let source = "
        % source instance
        Emp(ann, cs).   Emp(bob, cs).   Emp(cleo, math).
        Proj(cs, verif). Proj(math, algebra).

        % source-to-target dependencies (weakly acyclic)
        Emp(e,d), Proj(d,p) -> Works(e,p).
        Emp(e,d) -> exists m. Mgr(d,m).
        Emp(e,d), Mgr(d,m) -> Reports(e,m).
    ";
    let mut vocab = Vocabulary::new();
    let program = parse_program(source, &mut vocab).expect("valid program");
    let set = program.tgd_set(&vocab).expect("valid TGD set");

    // Before materialising anything, prove the mapping is safe for
    // EVERY source instance.
    assert!(is_weakly_acyclic(&set, &vocab));
    let verdict = decide(&set, &vocab, &DeciderConfig::default());
    assert!(verdict.is_terminating());
    println!("mapping is all-instances terminating: safe to materialise\n");

    // Materialise the universal solution.
    let run = RestrictedChase::new(&set)
        .strategy(Strategy::Fifo)
        .run(&program.database, Budget::steps(10_000));
    assert_eq!(run.outcome, Outcome::Terminated);
    println!(
        "universal solution ({} atoms, {} chase steps):",
        run.instance.len(),
        run.steps
    );
    println!("{}\n", run.instance.display(&vocab));

    // The result is a model of the dependencies...
    assert!(satisfies_all(&run.instance, &set));
    // ...and the recorded derivation replays (auditable materialisation).
    run.derivation
        .validate(&program.database, &set, true)
        .expect("derivation must replay");

    // Certain answers to  q(e) :- Works(e, p), Reports(e, m):
    // evaluate naively over the universal solution and keep the
    // all-constant answers.
    let mut q_vocab_scope = RuleBuilder::new(&mut vocab);
    let (e, p, m) = (
        q_vocab_scope.var("e"),
        q_vocab_scope.var("p"),
        q_vocab_scope.var("m"),
    );
    q_vocab_scope.body("Works", &[e, p]).unwrap();
    q_vocab_scope.body("Reports", &[e, m]).unwrap();
    q_vocab_scope.head("Ans", &[e]).unwrap();
    let query = q_vocab_scope.build().unwrap();

    let mut answers: Vec<String> = Vec::new();
    let mut binding = Binding::new();
    let _ = for_each_homomorphism(query.body(), &run.instance, &mut binding, &mut |h| {
        let image = h.get(e.as_var().unwrap()).expect("bound");
        if image.is_const() && !answers.contains(&vocab.term_to_string(image)) {
            answers.push(vocab.term_to_string(image));
        }
        ControlFlow::Continue(())
    });
    answers.sort();
    println!("certain answers to q(e) :- Works(e,p), Reports(e,m):");
    println!("  {}", answers.join(", "));
    assert_eq!(answers, vec!["ann", "bob", "cleo"]);
}
