//! The Fairness Theorem (Section 4) in action:
//!
//! 1. an *unfair* strategy leaves a trigger active for ever while a
//!    single-head derivation runs to infinity;
//! 2. the paper's splice construction repairs the prefix, producing a
//!    valid derivation with the old triggers discharged (Lemma 4.5);
//! 3. Example B.1 shows why multi-head TGDs break the theorem: the
//!    stopped-set `A` of Lemma 4.4 grows without bound, and an early
//!    splice invalidates the tail.
//!
//! Run with `cargo run --example fairness_demo`.

use restricted_chase::prelude::*;

const SINGLE_HEAD: &str = "
    R(a,b).
    R(x,y) -> exists z. R(y,z).   % σ0: appliable for ever
    R(x,y) -> S(x).               % σ1: starved by the priority strategy
";

const EXAMPLE_B1: &str = "
    R(a,b,b).
    R(x,y,y) -> exists z. R(x,z,y), R(z,y,y).   % σ0 (multi-head)
    R(u,v,w) -> R(w,w,w).                        % σ1
";

fn main() {
    // ── 1. Unfairness under a priority strategy ──────────────────
    let mut vocab = Vocabulary::new();
    let program = parse_program(SINGLE_HEAD, &mut vocab).expect("valid");
    let set = program.tgd_set(&vocab).expect("valid");
    let unfair = RestrictedChase::new(&set)
        .strategy(Strategy::PriorityTgd)
        .run(&program.database, Budget::steps(30));
    let age = chase_engine::fairness::unfairness_age(&program.database, &set, &unfair.derivation);
    println!(
        "priority strategy, 30 steps: unfairness age = {age} (σ1's first trigger was active the \
         whole run)"
    );
    let fair = RestrictedChase::new(&set)
        .strategy(Strategy::Fifo)
        .run(&program.database, Budget::steps(30));
    let fifo_age =
        chase_engine::fairness::unfairness_age(&program.database, &set, &fair.derivation);
    println!("FIFO strategy,     30 steps: unfairness age = {fifo_age} (bounded by queue latency)");

    // ── 2. Repairing the unfair prefix (Theorem 4.1's construction) ─
    match repair(&program.database, &set, &unfair.derivation, 20, 5) {
        RepairOutcome::Fair(fixed, rounds) => {
            println!(
                "\nrepair: {rounds} splices discharged every trigger older than cutoff 5; the \
                 spliced derivation ({} steps) validates (Lemma 4.5)",
                fixed.len()
            );
            fixed
                .validate(&program.database, &set, false)
                .expect("Lemma 4.5");
        }
        other => println!("\nunexpected repair outcome: {other:?}"),
    }

    // ── 3. Example B.1: multi-head TGDs break the theorem ─────────
    let mut vocab_b1 = Vocabulary::new();
    let program_b1 = parse_program(EXAMPLE_B1, &mut vocab_b1).expect("valid");
    let set_b1 = program_b1.tgd_set(&vocab_b1).expect("valid");

    // Unfair derivation: apply only σ0, for ever.
    let unfair_b1 = RestrictedChase::new(&set_b1)
        .strategy(Strategy::PriorityTgd)
        .run(&program_b1.database, Budget::steps(20));
    assert_eq!(unfair_b1.outcome, Outcome::BudgetExhausted);
    println!(
        "\nExample B.1: unfair derivation runs past {} steps (apply only the multi-head σ0)",
        unfair_b1.steps
    );

    // But every fair strategy terminates: once R(b,b,b) is derived,
    // all σ0 triggers are satisfied.
    for strategy in [Strategy::Fifo, Strategy::Random(11)] {
        let run = RestrictedChase::new(&set_b1)
            .strategy(strategy)
            .run(&program_b1.database, Budget::steps(100_000));
        println!(
            "  {strategy:?}: terminated after {} steps — every *valid* derivation is finite",
            run.steps
        );
        assert_eq!(run.outcome, Outcome::Terminated);
    }

    // Where the proof breaks: splicing σ1's result into the unfair
    // prefix deactivates every later σ0 trigger.
    let persistent = persistently_active(&program_b1.database, &set_b1, &unfair_b1.derivation);
    let spliced = chase_engine::fairness::splice_at(
        &program_b1.database,
        &set_b1,
        &unfair_b1.derivation,
        &persistent[0].trigger,
        1,
    );
    match spliced.validate(&program_b1.database, &set_b1, false) {
        Err(DerivationFault::NotActive(i)) => println!(
            "  splicing R(b,b,b) at position 1 invalidates the derivation at step {i}: \
             Lemma 4.4's finiteness of A fails for multi-head TGDs"
        ),
        other => println!("  unexpected: {other:?}"),
    }
}
