//! Ontology-mediated query answering with guarded and sticky TGDs —
//! the application domain (ontological reasoning, Section 1) that
//! motivates the paper's choice of guardedness and stickiness.
//!
//! A guarded ontology about projects and supervision is checked for
//! all-instances termination, materialised, and queried; then a sticky
//! (unguarded) ontology exhibiting a genuine cartesian-style join is
//! handled the same way; finally a non-terminating axiom set is
//! rejected *before* any materialisation is attempted — the intended
//! production use of the decision procedure.
//!
//! Run with `cargo run --example ontology_reasoning`.

use restricted_chase::prelude::*;
use std::ops::ControlFlow;

fn count_answers(instance: &Instance, vocab: &mut Vocabulary, body: &[(&str, &[&str])]) -> usize {
    let mut builder = RuleBuilder::new(vocab);
    let mut atoms = Vec::new();
    for (pred, vars) in body {
        let terms: Vec<Term> = vars.iter().map(|v| builder.var(v)).collect();
        builder.body(pred, &terms).unwrap();
        atoms.push((pred.to_string(), terms));
    }
    let grounded: Vec<Atom> = {
        // Rebuild atoms through the vocabulary (arities already known).
        atoms
            .iter()
            .map(|(p, terms)| Atom::new(vocab.lookup_pred(p).unwrap(), terms.clone()))
            .collect()
    };
    let mut count = 0usize;
    let mut binding = Binding::new();
    let _ = for_each_homomorphism(&grounded, instance, &mut binding, &mut |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    count
}

fn main() {
    // ── A guarded ontology ────────────────────────────────────────
    // Every employee works on some project; project workers are
    // supervised by someone on the same project; supervision within a
    // project implies seniority.
    let guarded_src = "
        Emp(ann). Emp(bob).
        Emp(e) -> exists p. WorksOn(e,p).
        WorksOn(e,p) -> exists s. Sup(s,e,p).
        Sup(s,e,p) -> Senior(s).
    ";
    let mut vocab = Vocabulary::new();
    let program = parse_program(guarded_src, &mut vocab).expect("valid");
    let onto = program.tgd_set(&vocab).expect("valid");
    assert!(all_guarded(&onto));
    let verdict = decide(&onto, &vocab, &DeciderConfig::default());
    assert!(verdict.is_terminating());
    println!("guarded ontology: all-instances terminating — materialising");
    let run = RestrictedChase::new(&onto)
        .strategy(Strategy::Fifo)
        .run(&program.database, Budget::steps(10_000));
    assert_eq!(run.outcome, Outcome::Terminated);
    println!(
        "  canonical model: {} atoms = {}",
        run.instance.len(),
        run.instance.display(&vocab)
    );
    let seniors = count_answers(&run.instance, &mut vocab, &[("Senior", &["s"])]);
    println!("  q(s) :- Senior(s): {seniors} answers (one invented supervisor per employee)\n");
    assert_eq!(seniors, 2);

    // ── A sticky (unguarded) ontology ─────────────────────────────
    // Cross-departmental pairing: stickiness expresses the join that
    // guardedness cannot.
    // The join variable d is propagated to *every* head (the defining
    // sticky discipline), so the set passes the marking test.
    let sticky_src = "
        Dept(cs). Dept(math). Lead(cs,ann). Lead(math,cleo).
        Lead(d,l), Dept(d) -> exists c. Chairs(d,l,c).
        Chairs(d,l,c) -> Committee(d,c).
    ";
    let mut vocab2 = Vocabulary::new();
    let program2 = parse_program(sticky_src, &mut vocab2).expect("valid");
    let onto2 = program2.tgd_set(&vocab2).expect("valid");
    assert!(is_sticky(&onto2));
    assert!(!all_linear(&onto2));
    let verdict2 = decide_sticky(&onto2, &vocab2, &DeciderConfig::default());
    assert!(verdict2.is_terminating());
    println!("sticky ontology: automaton-certified terminating — materialising");
    let run2 = RestrictedChase::new(&onto2)
        .strategy(Strategy::Fifo)
        .run(&program2.database, Budget::steps(10_000));
    assert_eq!(run2.outcome, Outcome::Terminated);
    let committees = count_answers(&run2.instance, &mut vocab2, &[("Committee", &["d", "c"])]);
    println!("  q(d,c) :- Committee(d,c): {committees} answers\n");
    assert_eq!(committees, 2);

    // ── A dangerous axiom set, rejected up front ──────────────────
    // "Every manager has a manager" — the classic infinite hierarchy.
    let dangerous_src = "Mgr(x,y) -> exists z. Mgr(y,z).";
    let mut vocab3 = Vocabulary::new();
    let onto3 = parse_tgds(dangerous_src, &mut vocab3).expect("valid");
    match decide(&onto3, &vocab3, &DeciderConfig::default()) {
        TerminationVerdict::NonTerminating(w) => {
            println!("dangerous ontology rejected before materialisation:");
            println!("  witness database: {}", w.database.display(&vocab3));
            println!("  {}", w.description);
        }
        other => panic!("expected NonTerminating, got {other:?}"),
    }
}
