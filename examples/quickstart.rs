//! Quickstart: parse a program, classify it, chase it, and decide
//! all-instances restricted chase termination.
//!
//! Run with `cargo run --example quickstart`.

use restricted_chase::prelude::*;

fn main() {
    // The paper's flagship contrast (Section 1): the restricted chase
    // recognises that {R(a,b)} already satisfies the dependency, the
    // oblivious chase runs away.
    let source = "
        R(a,b).
        R(x,y) -> exists z. R(x,z).
    ";
    let mut vocab = Vocabulary::new();
    let program = parse_program(source, &mut vocab).expect("valid program");
    let set = program.tgd_set(&vocab).expect("valid TGD set");

    println!("== rules ==");
    println!("{}\n", set.display(&vocab));

    // 1. Structural classification.
    let profile = ClassProfile::analyse(&set, &vocab, Budget::steps(10_000));
    println!("classes: {}\n", profile.summary());

    // 2. The restricted chase terminates immediately...
    let restricted = RestrictedChase::new(&set)
        .strategy(Strategy::Fifo)
        .run(&program.database, Budget::steps(100));
    println!(
        "restricted chase: {:?} after {} steps -> {}",
        restricted.outcome,
        restricted.steps,
        restricted.instance.display(&vocab)
    );

    // ...while the oblivious chase blows any budget.
    let oblivious = ObliviousChase::new(&set).run(&program.database, Budget::steps(10));
    println!(
        "oblivious chase:  {:?} after {} steps ({} atoms)\n",
        oblivious.outcome,
        oblivious.steps,
        oblivious.instance.len()
    );

    // 3. The decision procedure: does EVERY database terminate?
    match decide(&set, &vocab, &DeciderConfig::default()) {
        TerminationVerdict::AllInstancesTerminating(cert) => {
            println!("verdict: all-instances terminating ({cert:?})");
        }
        TerminationVerdict::NonTerminating(w) => {
            println!("verdict: NOT all-instances terminating");
            println!("  witness database: {}", w.database.display(&vocab));
        }
        TerminationVerdict::Unknown { reason } => println!("verdict: unknown ({reason})"),
    }

    // 4. Flip the rule into right recursion and watch the verdict flip.
    let mut vocab2 = Vocabulary::new();
    let set2 = parse_tgds("R(x,y) -> exists z. R(y,z).", &mut vocab2).expect("valid");
    match decide(&set2, &vocab2, &DeciderConfig::default()) {
        TerminationVerdict::NonTerminating(w) => {
            println!("\nright recursion: NOT all-instances terminating");
            println!("  witness database: {}", w.database.display(&vocab2));
            println!("  {}", w.description);
            println!(
                "  validated derivation prefix of {} steps",
                w.derivation.len()
            );
        }
        other => println!("\nunexpected verdict {other:?}"),
    }
}
