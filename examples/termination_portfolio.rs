//! The termination portfolio over the labelled ground-truth suite:
//! experiment E8 in executable form. For every suite entry, print its
//! structural classes, what the baseline criteria say, and the
//! decider's verdict — exhibiting the strict hierarchy
//!
//! ```text
//! weak acyclicity ⊂ joint acyclicity ⊂ semi-oblivious-critical ⊂ CT^res_∀∀
//! ```
//!
//! Run with `cargo run --example termination_portfolio`.

use restricted_chase::prelude::*;

fn main() {
    let config = DeciderConfig::default();
    let budget = Budget::steps(20_000);

    println!(
        "{:<34} {:>7} {:>7} {:>4} {:>4} {:>4} {:>16} {:>16}",
        "entry", "guarded", "sticky", "WA", "JA", "SO*", "verdict", "expected"
    );
    println!("{}", "-".repeat(102));

    let (mut wa_holds, mut ja_holds, mut so_holds, mut ct_holds) = (0usize, 0usize, 0usize, 0usize);
    let mut agreements = 0usize;
    let suite = labelled_suite();
    for entry in &suite {
        let (vocab, set) = entry.build();
        let mut scratch = vocab.clone();
        let guarded = all_guarded(&set);
        let sticky = is_sticky(&set);
        let wa = is_weakly_acyclic(&set, &vocab);
        let ja = is_jointly_acyclic(&set);
        let so = semi_oblivious_critical(&set, &mut scratch, budget).holds();
        let verdict = decide(&set, &vocab, &config);
        let v = match &verdict {
            TerminationVerdict::AllInstancesTerminating(_) => "terminating",
            TerminationVerdict::NonTerminating(_) => "non-terminating",
            TerminationVerdict::Unknown { .. } => "unknown",
        };
        let expected = match entry.expected {
            Expected::Terminating => "terminating",
            Expected::NonTerminating => "non-terminating",
        };
        if v == expected {
            agreements += 1;
        }
        wa_holds += usize::from(wa);
        ja_holds += usize::from(ja);
        so_holds += usize::from(so);
        ct_holds += usize::from(entry.expected == Expected::Terminating);
        println!(
            "{:<34} {:>7} {:>7} {:>4} {:>4} {:>4} {:>16} {:>16}",
            entry.name,
            yn(guarded),
            yn(sticky),
            yn(wa),
            yn(ja),
            yn(so),
            v,
            expected
        );
    }

    println!("{}", "-".repeat(102));
    println!(
        "criteria coverage over {} entries: weakly-acyclic {}, jointly-acyclic {}, \
         semi-oblivious-critical {}, CT^res_∀∀ (ground truth) {}",
        suite.len(),
        wa_holds,
        ja_holds,
        so_holds,
        ct_holds
    );
    println!(
        "decider agreement with ground truth: {agreements}/{}",
        suite.len()
    );
    assert_eq!(agreements, suite.len(), "decider must match ground truth");
    assert!(
        wa_holds < ja_holds && ja_holds <= so_holds && so_holds < ct_holds,
        "strict hierarchy"
    );
    println!("strict hierarchy WA ⊂ JA ⊆ SO-critical ⊂ CT^res_∀∀ confirmed");
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}
