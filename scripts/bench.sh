#!/usr/bin/env bash
# Hot-path benchmark runner. Offline-friendly (path dependencies only).
#
# Usage:
#   scripts/bench.sh          # criterion benches + full BENCH_hotpath.json
#   scripts/bench.sh smoke    # quick non-timing sanity pass (CI / check.sh)
#
# The full mode regenerates BENCH_hotpath.json in the repo root (the
# committed baseline-vs-optimised report); smoke mode runs tiny
# workloads once and writes under target/ so it never clobbers the
# committed numbers. Smoke mode also acts as a perf-regression gate:
# hotpath_report exits non-zero if any optimised engine is slower than
# its seed baseline beyond HOTPATH_GATE_TOLERANCE (default 1.5x), or
# if the parallel driver at the gate thread count (2 where the host
# has >= 2 CPUs, else 1) falls below SCALING_GATE_TOLERANCE (default
# 0.95) x sequential on either scaling workload.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-full}"

case "$MODE" in
smoke | --smoke)
    cargo run --offline --release -p chase-bench --bin hotpath_report -- \
        --mode smoke --out target/BENCH_hotpath.smoke.json
    ;;
full)
    cargo bench --offline -p chase-bench --bench hotpath
    cargo run --offline --release -p chase-bench --bin hotpath_report -- \
        --out BENCH_hotpath.json
    ;;
*)
    echo "usage: scripts/bench.sh [smoke]" >&2
    exit 2
    ;;
esac
