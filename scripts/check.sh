#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, tests. Offline-friendly — every
# dependency is a path dependency (workspace crates + vendor/ stubs),
# so `--offline` never needs a network.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no build artifacts tracked or staged =="
if [ -n "$(git ls-files --cached target 2>/dev/null)" ]; then
    echo "ERROR: target/ paths are tracked or staged; run 'git rm -r --cached target'" >&2
    git ls-files --cached target | head >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test -q (root package: tier-1) =="
cargo test --offline -q

echo "== incremental-equivalence property suite (watermarks vs seed) =="
cargo test --offline -q --test incremental_equivalence

echo "== cargo test -q --workspace =="
cargo test --offline -q --workspace

echo "== fault-injection suite (chase-engine faults) =="
cargo test --offline -q -p chase-engine faults

echo "== hot-path smoke report (seed vs optimised bit-identity + timing sanity) =="
scripts/bench.sh smoke

echo "All checks passed."
