#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, tests. Offline-friendly — every
# dependency is a path dependency (workspace crates + vendor/ stubs),
# so `--offline` never needs a network.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no build artifacts tracked or staged =="
if [ -n "$(git ls-files --cached target 2>/dev/null)" ]; then
    echo "ERROR: target/ paths are tracked or staged; run 'git rm -r --cached target'" >&2
    git ls-files --cached target | head >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test -q (root package: tier-1) =="
cargo test --offline -q

echo "== incremental-equivalence property suite (watermarks vs seed) =="
cargo test --offline -q --test incremental_equivalence

echo "== cargo test -q --workspace =="
cargo test --offline -q --workspace

echo "== fault-injection suite (chase-engine faults) =="
cargo test --offline -q -p chase-engine faults

echo "== hot-path smoke report (bit-identity + timing sanity + thread-scaling gate) =="
# Includes the scaling smoke gate: parallel at the gate thread count
# (2 on multi-core hosts, 1 on single-core ones) must be at least
# ${SCALING_GATE_TOLERANCE:-0.95}x sequential on the gate workloads.
scripts/bench.sh smoke

echo "== zero-alloc proof (NullObserver hot path) =="
cargo test --offline -q -p chase-bench --test hotpath_alloc

echo "== profiler smoke gate (overhead <= ${PROFILE_GATE_OVERHEAD:-10}% + report round-trip) =="
# The overhead estimate (median of interleaved paired ratios) is
# robust to short interference, but a noise burst outlasting a whole
# invocation can still poison it on a busy host — so the gate allows
# ${PROFILE_GATE_ATTEMPTS:-3} attempts. A real overhead regression
# fails every attempt; a noisy neighbour does not.
cargo build --offline -q --release -p chase-cli
for attempt in $(seq 1 "${PROFILE_GATE_ATTEMPTS:-3}"); do
    if target/release/chasectl profile examples/rules/closure.chase \
        --runs "${PROFILE_GATE_RUNS:-9}" \
        --max-overhead "${PROFILE_GATE_OVERHEAD:-10}" \
        --json target/profile_smoke.json; then
        break
    elif [ "$attempt" -eq "${PROFILE_GATE_ATTEMPTS:-3}" ]; then
        echo "profiler smoke gate: overhead above the budget on all attempts" >&2
        exit 1
    else
        echo "profiler smoke gate: attempt $attempt over budget (likely machine noise), retrying" >&2
    fi
done
target/release/chasectl stats target/profile_smoke.json

echo "All checks passed."
