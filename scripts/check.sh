#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, tests. Offline-friendly — every
# dependency is a path dependency (workspace crates + vendor/ stubs),
# so `--offline` never needs a network.
#
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no build artifacts tracked or staged =="
if [ -n "$(git ls-files --cached target 2>/dev/null)" ]; then
    echo "ERROR: target/ paths are tracked or staged; run 'git rm -r --cached target'" >&2
    git ls-files --cached target | head >&2
    exit 1
fi

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy --workspace -- -D warnings =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo test -q (root package: tier-1) =="
cargo test --offline -q

echo "== incremental-equivalence property suite (watermarks vs seed) =="
cargo test --offline -q --test incremental_equivalence

echo "== parallel-apply equivalence suite (staged apply vs seed oracle, threads x shards) =="
# Bit-identity of the staged apply phase: outcome, step count, slot
# ids, telemetry stream and derivation replay must match the
# sequential run for every tested worker x shard combination. Worker
# counts are forced (`.workers(n)`), so this holds on any host.
cargo test --offline -q --test incremental_equivalence parallel_apply
cargo test --offline -q -p chase-engine --test shard_equivalence parallel_apply

echo "== cargo test -q --workspace =="
cargo test --offline -q --workspace

echo "== fault-injection suite (chase-engine faults) =="
cargo test --offline -q -p chase-engine faults

echo "== server isolation suite (concurrent faulty sessions vs direct runs) =="
# Boots the resident chase server on throwaway unix sockets and drives
# concurrent sessions — a non-terminating one killed by its deadline,
# one cancelled mid-run, one panicking via FaultPlan — and asserts the
# healthy sessions' result fingerprints are bit-identical to direct
# engine runs, with the server surviving to serve a follow-up request.
cargo test --offline -q -p chase-server --test server_isolation

echo "== serve/client round trip (chasectl golden tests, real processes) =="
cargo test --offline -q -p chase-cli --test cli_golden serve

echo "== program cache suite (repeated rule sets hit, decide memoized, abort shutdown) =="
# Boots a real server and submits the same rule set twice: the second
# submission must be a cache hit (asserted via the streamed
# server.program_cache.* telemetry counters) with a bit-identical
# result fingerprint; decide verdicts must be served from the
# memoization cache (cached:true + server.decide_cache.hits); and
# {"op":"shutdown","mode":"abort"} must cancel in-flight sessions.
cargo test --offline -q -p chase-server --test program_cache

echo "== fingerprint canonicalization property suite (compile cache addressing) =="
cargo test --offline -q -p chase-core --test compile_fingerprint

echo "== hot-path smoke report (bit-identity + timing sanity + thread-scaling gate) =="
# Includes the scaling smoke gate: parallel at the gate thread count
# (2 on multi-core hosts, 1 on single-core ones) must be at least
# ${SCALING_GATE_TOLERANCE:-0.95}x sequential on the gate workloads.
# On hosts with >= 2 cpus the report also runs a 2-thread bit-identity
# check (telemetry stream included); single-cpu hosts print a skip
# notice and rely on the forced-worker equivalence suites above.
# Like the profiler gate below, the timing side gets
# ${BENCH_GATE_ATTEMPTS:-3} attempts: even paired-ratio medians jitter
# a few percent on busy single-CPU hosts, and a real regression fails
# every attempt while a noisy neighbour does not. Bit-identity
# violations fail hard on the first attempt (they assert, exit 101).
for attempt in $(seq 1 "${BENCH_GATE_ATTEMPTS:-3}"); do
    if scripts/bench.sh smoke; then
        break
    else
        status=$?
        if [ "$status" -ne 1 ] || [ "$attempt" -eq "${BENCH_GATE_ATTEMPTS:-3}" ]; then
            echo "hot-path smoke gate: failed (status $status) on attempt $attempt" >&2
            exit 1
        fi
        echo "hot-path smoke gate: attempt $attempt over tolerance (likely machine noise), retrying" >&2
    fi
done

echo "== BENCH_hotpath.json schema gate (host-honesty fields) =="
# The committed report must keep the honesty fields from PR 8:
# host_cpus (always emitted), plus the truncation warning and
# per-point parallel efficiency that keep a small-host regeneration
# readable. A regeneration that silently drops them fails here — if a
# many-core regeneration legitimately removes the truncation fields,
# this gate is the place to say so deliberately.
# "server_warm" (PR 10) carries the program-cache cold/warm comparison
# and its >= 5x smoke gate.
for field in '"host_cpus"' '"warning"' '"efficiency"' '"server_warm"'; do
    if ! grep -q "$field" BENCH_hotpath.json; then
        echo "BENCH_hotpath.json schema gate: missing required field $field" >&2
        exit 1
    fi
done

echo "== zero-alloc proof (NullObserver hot path) =="
cargo test --offline -q -p chase-bench --test hotpath_alloc

echo "== profiler smoke gate (overhead <= ${PROFILE_GATE_OVERHEAD:-10}% + report round-trip) =="
# The overhead estimate (median of interleaved paired ratios) is
# robust to short interference, but a noise burst outlasting a whole
# invocation can still poison it on a busy host — so the gate allows
# ${PROFILE_GATE_ATTEMPTS:-3} attempts. A real overhead regression
# fails every attempt; a noisy neighbour does not.
cargo build --offline -q --release -p chase-cli
for attempt in $(seq 1 "${PROFILE_GATE_ATTEMPTS:-3}"); do
    if target/release/chasectl profile examples/rules/closure.chase \
        --runs "${PROFILE_GATE_RUNS:-9}" \
        --max-overhead "${PROFILE_GATE_OVERHEAD:-10}" \
        --json target/profile_smoke.json; then
        break
    elif [ "$attempt" -eq "${PROFILE_GATE_ATTEMPTS:-3}" ]; then
        echo "profiler smoke gate: overhead above the budget on all attempts" >&2
        exit 1
    else
        echo "profiler smoke gate: attempt $attempt over budget (likely machine noise), retrying" >&2
    fi
done
target/release/chasectl stats target/profile_smoke.json

echo "All checks passed."
